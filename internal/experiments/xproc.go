package experiments

// Cross-process ablation: every other experiment in this repo runs its
// pilots as goroutines inside one process, where the in-proc msgq
// transport hides serialization, framing and socket failure modes. This
// ablation re-runs the route and service-failover scenarios with each
// pilot as a real OS process (xproc agents reached over the pooled TCP
// transport) and asserts outcome-count equality against the in-proc
// baselines — the determinism contract of the transport seam: swapping
// the wire under the session changes timing, not outcomes. RunXproc
// drives both scenario families and is the `rpexp -exp xproc` table.
//
// Outcome counts (not placements or latencies) are the comparable
// quantity: the drivers submit identical workloads in identical order to
// identically carved pilots, and the routers compared here (round-robin,
// capacity-fit) decide from submission order and static shapes only, so
// the done/failed/rejected tallies are timing-independent. least-loaded
// is deliberately excluded — it reads live queue-depth snapshots, which
// real-clock agent processes cannot reproduce deterministically.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
	"repro/internal/xproc"
)

// XprocConfig parameterizes the cross-process ablation.
type XprocConfig struct {
	// Platform names the mixed-shape catalog platform carved into one
	// agent process per node-shape partition (default "hetero").
	Platform string
	// Routers are the strategies compared in the route scenario (default:
	// round-robin, capacity-fit — the deterministic ones; least-loaded
	// depends on live snapshots and is excluded, see the package comment).
	Routers []string
	// FatTasks / ThinTasks size the route workload (defaults 8 / 16 — the
	// route ablation at smoke scale; the in-proc baseline runs the same).
	FatTasks, ThinTasks int
	// TaskTime is the simulated task duration (default 5s).
	TaskTime time.Duration
	// Requests / KillAfter shape the failover request stream (defaults
	// 16 / 8).
	Requests, KillAfter int
	// Scale is the agents' clock compression (default 2000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
}

// DefaultXprocConfig returns the figure-scale parameterization.
func DefaultXprocConfig() XprocConfig {
	return XprocConfig{
		Platform:  "hetero",
		Routers:   []string{router.NameRoundRobin, router.NameCapacityFit},
		FatTasks:  8,
		ThinTasks: 16,
		TaskTime:  5 * time.Second,
		Requests:  16,
		KillAfter: 8,
		Scale:     2000,
		Seed:      11,
	}
}

// XprocResult is the cross-process ablation dataset: each scenario's
// cross-process rows next to its in-proc baseline rows.
type XprocResult struct {
	Cfg XprocConfig
	// Route / RouteInproc are the routing outcomes, one row per router.
	Route, RouteInproc []RouteRow
	// SvcFail / SvcFailInproc are the failover outcomes, one row per
	// client style.
	SvcFail, SvcFailInproc []SvcFailRow
	// FatCores/FatGPUs/ThinCores echo the per-task demands.
	FatCores, FatGPUs, ThinCores int
}

// RunXproc executes the cross-process ablation: the route and failover
// scenarios once with pilots as OS processes over TCP, once in-proc, on
// identical workloads.
func RunXproc(ctx context.Context, cfg XprocConfig) (*XprocResult, error) {
	def := DefaultXprocConfig()
	if cfg.Platform == "" {
		cfg.Platform = def.Platform
	}
	if len(cfg.Routers) == 0 {
		cfg.Routers = def.Routers
	}
	if cfg.FatTasks <= 0 {
		cfg.FatTasks = def.FatTasks
	}
	if cfg.ThinTasks <= 0 {
		cfg.ThinTasks = def.ThinTasks
	}
	if cfg.TaskTime <= 0 {
		cfg.TaskTime = def.TaskTime
	}
	if cfg.Requests <= 0 {
		cfg.Requests = def.Requests
	}
	if cfg.KillAfter <= 0 || cfg.KillAfter >= cfg.Requests {
		cfg.KillAfter = cfg.Requests / 2
	}
	if cfg.Scale <= 0 {
		cfg.Scale = def.Scale
	}
	plat := platform.DefaultTopology().Platform(cfg.Platform)
	if plat == nil {
		return nil, fmt.Errorf("experiments: xproc: unknown platform %q", cfg.Platform)
	}
	shapes := plat.Shapes()
	if len(shapes) < 2 {
		return nil, fmt.Errorf("experiments: xproc: platform %q is homogeneous (%s); the ablation needs mismatched pilots",
			cfg.Platform, platform.FormatShapes(shapes))
	}
	thin, fat := thinAndFat(shapes)
	res := &XprocResult{
		Cfg:       cfg,
		FatCores:  fat.Spec.Cores,
		FatGPUs:   fat.Spec.GPUs,
		ThinCores: thin.Spec.Cores,
	}

	// In-proc baselines on the identical workloads.
	inRoute, err := RunRoute(ctx, RouteConfig{
		Platform: cfg.Platform, Routers: cfg.Routers,
		FatTasks: cfg.FatTasks, ThinTasks: cfg.ThinTasks,
		TaskTime: cfg.TaskTime, Scale: cfg.Scale, Seed: cfg.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: xproc in-proc route baseline: %w", err)
	}
	res.RouteInproc = inRoute.Rows
	inSvc, err := RunSvcFail(ctx, SvcFailConfig{
		Platform: cfg.Platform, Requests: cfg.Requests, KillAfter: cfg.KillAfter,
		Scale: cfg.Scale, Seed: cfg.Seed,
	})
	if err != nil {
		return res, fmt.Errorf("experiments: xproc in-proc svcfail baseline: %w", err)
	}
	res.SvcFailInproc = inSvc.Rows

	// Cross-process route scenario, one fresh agent pair per router.
	for _, rt := range cfg.Routers {
		row, err := runXprocRoutePoint(ctx, cfg, rt)
		if err != nil {
			return res, fmt.Errorf("experiments: xproc route %s: %w", rt, err)
		}
		res.Route = append(res.Route, row)
	}
	// Cross-process failover scenario, one fresh agent pair per style.
	for _, client := range []string{SvcFailClientCaching, SvcFailClientResolving} {
		row, err := runXprocSvcFailPoint(ctx, cfg, client)
		if err != nil {
			return res, fmt.Errorf("experiments: xproc svcfail %s: %w", client, err)
		}
		res.SvcFail = append(res.SvcFail, row)
	}
	return res, nil
}

// spawnAgents starts one pilot-agent process per node-shape partition of
// the platform, carving consecutive partitions exactly as the in-proc
// experiments' consecutive pilot submissions do.
func spawnAgents(ctx context.Context, cfg XprocConfig) ([]*xproc.Proc, func(), error) {
	plat := platform.DefaultTopology().Platform(cfg.Platform)
	var procs []*xproc.Proc
	cleanup := func() {
		for _, p := range procs {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = p.Shutdown(sctx)
			cancel()
		}
	}
	skip := 0
	for i, g := range plat.Shapes() {
		p, err := xproc.Spawn(ctx, xproc.AgentConfig{
			UID:       fmt.Sprintf("pilot.%04d", i),
			Platform:  cfg.Platform,
			SkipNodes: skip,
			Nodes:     g.Count,
			Seed:      cfg.Seed + uint64(i),
			Scale:     cfg.Scale,
		})
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		procs = append(procs, p)
		skip += g.Count
	}
	return procs, cleanup, nil
}

// runXprocRoutePoint replays the route workload with the router running
// driver-side over agent processes as targets.
func runXprocRoutePoint(ctx context.Context, cfg XprocConfig, rt string) (RouteRow, error) {
	procs, cleanup, err := spawnAgents(ctx, cfg)
	if err != nil {
		return RouteRow{}, err
	}
	defer cleanup()

	r, err := router.ByName(rt)
	if err != nil {
		return RouteRow{}, err
	}
	targets := make([]router.Target, len(procs))
	for i, p := range procs {
		targets[i] = p
	}

	row := RouteRow{Router: rt}
	thin, fat := thinAndFat(platform.DefaultTopology().Platform(cfg.Platform).Shapes())
	dur := rng.ConstDuration(cfg.TaskTime)
	// Per-agent UID lists, fat and thin tracked separately so the final
	// tallies split by class like the in-proc rows do.
	fatUIDs := make([][]string, len(procs))
	thinUIDs := make([][]string, len(procs))
	submit := func(d spec.TaskDescription, uids [][]string) error {
		idx, err := r.Route(targets, d)
		if err != nil {
			var un router.ErrUnroutable
			if errors.As(err, &un) {
				row.Rejected++
				return nil
			}
			return err
		}
		uid, err := procs[idx].SubmitTask(ctx, d)
		if err != nil {
			return err
		}
		uids[idx] = append(uids[idx], uid)
		return nil
	}
	for i := 0; i < cfg.FatTasks; i++ {
		d := spec.TaskDescription{
			Name:  fmt.Sprintf("fat-%04d", i),
			Cores: fat.Spec.Cores, GPUs: fat.Spec.GPUs, Duration: dur,
		}
		if err := submit(d, fatUIDs); err != nil {
			return row, err
		}
	}
	for i := 0; i < cfg.ThinTasks; i++ {
		d := spec.TaskDescription{
			Name:  fmt.Sprintf("thin-%04d", i),
			Cores: thin.Spec.Cores, Duration: dur,
		}
		if err := submit(d, thinUIDs); err != nil {
			return row, err
		}
	}

	// One blocking wait RPC per agent for its whole UID set.
	waitCtx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	count := func(p *xproc.Proc, uids []string) (done, failed int, err error) {
		if len(uids) == 0 {
			return 0, 0, nil
		}
		st, err := p.WaitTasks(waitCtx, uids)
		if err != nil {
			return 0, 0, err
		}
		for _, s := range st {
			if s.State == string(states.TaskDone) {
				done++
			} else {
				failed++
			}
		}
		return done, failed, nil
	}
	for i, p := range procs {
		d, f, err := count(p, fatUIDs[i])
		if err != nil {
			return row, err
		}
		row.FatDone += d
		row.FatFailed += f
		if d, f, err = count(p, thinUIDs[i]); err != nil {
			return row, err
		}
		row.ThinDone += d
		row.ThinFailed += f
	}
	return row, nil
}

// runXprocSvcFailPoint replays the failover scenario with the service
// hosted in an agent process that is SIGKILLed mid-stream — a harder kill
// than the in-proc pilot shutdown — and the registry/re-placement loop
// running driver-side.
func runXprocSvcFailPoint(ctx context.Context, cfg XprocConfig, client string) (SvcFailRow, error) {
	procs, cleanup, err := spawnAgents(ctx, cfg)
	if err != nil {
		return SvcFailRow{}, err
	}
	defer cleanup()
	if len(procs) < 2 {
		return SvcFailRow{}, fmt.Errorf("platform %q yields %d agents; the failover needs a survivor", cfg.Platform, len(procs))
	}

	desc := spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{UID: "svc.0", Name: "svc", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
		StartTimeout:    time.Hour,
	}
	svcUID, err := procs[0].SubmitService(ctx, desc)
	if err != nil {
		return SvcFailRow{}, err
	}
	ep, err := procs[0].AwaitService(ctx, svcUID)
	if err != nil {
		return SvcFailRow{}, err
	}
	row := SvcFailRow{Client: client, HostBefore: procs[0].UID()}

	// The driver owns the registry: agents publish dialable tcp://
	// endpoints, the driver records them under the stable service UID.
	reg := service.NewEndpointRegistry()
	genBefore, err := reg.Publish(ep)
	if err != nil {
		return row, err
	}
	clock := simtime.NewReal()
	net := msgq.NewNetwork(clock, rng.New(cfg.Seed).Derive("xproc-driver"), nil)
	defer net.Close()
	dial := func(ep proto.Endpoint) (service.Caller, error) {
		return service.Dial(net, clock, "xproc-client", ep)
	}
	var caller service.Caller
	var resolver *service.Resolver
	switch client {
	case SvcFailClientCaching:
		caller, err = dial(ep)
	case SvcFailClientResolving:
		resolver, err = service.NewResolver(reg, svcUID, dial, 0)
		caller = resolver
	default:
		return row, fmt.Errorf("unknown client style %q", client)
	}
	if err != nil {
		return row, err
	}
	defer caller.Close()

	for i := 0; i < cfg.KillAfter; i++ {
		if _, _, err := caller.Infer(ctx, fmt.Sprintf("pre-%d", i), 0); err != nil {
			return row, fmt.Errorf("pre-kill request %d: %w", i, err)
		}
		row.PreKill++
	}

	// SIGKILL the hosting process, then re-place the service on the
	// survivor and re-publish its endpoint under the same UID.
	if err := procs[0].Kill(); err != nil {
		return row, err
	}
	reg.Suspend(svcUID)
	if _, err := procs[1].SubmitService(ctx, desc); err != nil {
		return row, err
	}
	ep2, err := procs[1].AwaitService(ctx, svcUID)
	if err != nil {
		return row, err
	}
	gen, err := reg.Publish(ep2)
	if err != nil {
		return row, err
	}
	if gen <= genBefore {
		return row, fmt.Errorf("re-publication did not advance the generation: %d -> %d", genBefore, gen)
	}
	row.Generation = gen
	row.Replacements = 1
	row.HostAfter = procs[1].UID()

	for i := 0; i < cfg.Requests-cfg.KillAfter; i++ {
		if _, _, err := caller.Infer(ctx, fmt.Sprintf("post-%d", i), 0); err != nil {
			row.Failed++
		} else {
			row.Recovered++
		}
	}
	if resolver != nil {
		row.Reresolved = resolver.Reresolved()
	}
	return row, nil
}

// RouteTable renders the route scenario, cross-process and in-proc rows
// interleaved per router.
func (r *XprocResult) RouteTable() metrics.Table {
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Cross-process route ablation — %s carved into per-shape agent processes over TCP, %d fat tasks (%dc/%dg) + %d thin tasks (%dc)",
			r.Cfg.Platform, r.Cfg.FatTasks, r.FatCores, r.FatGPUs, r.Cfg.ThinTasks, r.ThinCores),
		Header: []string{"router", "variant", "fat done", "fat failed", "thin done", "thin failed", "rejected"},
	}
	add := func(variant string, row RouteRow) {
		t.AddRow(row.Router, variant,
			fmt.Sprintf("%d/%d", row.FatDone, r.Cfg.FatTasks),
			fmt.Sprintf("%d", row.FatFailed),
			fmt.Sprintf("%d/%d", row.ThinDone, r.Cfg.ThinTasks),
			fmt.Sprintf("%d", row.ThinFailed),
			fmt.Sprintf("%d", row.Rejected))
	}
	for i, row := range r.Route {
		add("os-process", row)
		if i < len(r.RouteInproc) {
			add("in-proc", r.RouteInproc[i])
		}
	}
	return t
}

// SvcFailTable renders the failover scenario, cross-process and in-proc
// rows interleaved per client style.
func (r *XprocResult) SvcFailTable() metrics.Table {
	post := r.Cfg.Requests - r.Cfg.KillAfter
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Cross-process failover ablation — hosting agent SIGKILLed after %d/%d requests (%d post-failover)",
			r.Cfg.KillAfter, r.Cfg.Requests, post),
		Header: []string{"client", "variant", "pre-kill ok", "recovered", "failed", "re-resolved", "endpoint gen"},
	}
	add := func(variant string, row SvcFailRow) {
		t.AddRow(row.Client, variant,
			fmt.Sprintf("%d/%d", row.PreKill, r.Cfg.KillAfter),
			fmt.Sprintf("%d/%d", row.Recovered, post),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%d", row.Reresolved),
			fmt.Sprintf("%d", row.Generation))
	}
	for i, row := range r.SvcFail {
		add("os-process", row)
		if i < len(r.SvcFailInproc) {
			add("in-proc", r.SvcFailInproc[i])
		}
	}
	return t
}

// Package loadbal distributes client inference requests across service
// instances. The paper's prototype employs "only a rudimentary load
// balancing" (round-robin); its future work calls for "dynamically
// rerouting requests to less used service instances". Both ends of that
// spectrum are implemented here — round-robin, uniform random, and
// least-pending (queue-depth-aware) — and compared by the ablation
// benchmark BenchmarkAblationLoadBalancing.
package loadbal

import (
	"errors"
	"sync"

	"repro/internal/proto"
	"repro/internal/rng"
)

// ErrNoEndpoints is returned when Pick is called with no candidates.
var ErrNoEndpoints = errors.New("loadbal: no endpoints")

// Balancer picks one endpoint out of the candidate set.
type Balancer interface {
	Pick(eps []proto.Endpoint) (proto.Endpoint, error)
}

// RoundRobin cycles through candidates in order — the paper's rudimentary
// strategy.
type RoundRobin struct {
	mu sync.Mutex
	n  uint64
}

// NewRoundRobin returns a round-robin balancer.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Pick implements Balancer.
func (b *RoundRobin) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	b.mu.Lock()
	i := b.n % uint64(len(eps))
	b.n++
	b.mu.Unlock()
	return eps[i], nil
}

// Random picks uniformly at random.
type Random struct{ src *rng.Source }

// NewRandom returns a random balancer over src.
func NewRandom(src *rng.Source) *Random { return &Random{src: src} }

// Pick implements Balancer.
func (b *Random) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	return eps[b.src.Intn(len(eps))], nil
}

// DepthFunc reports the live queue depth of a service.
type DepthFunc func(serviceUID string) int

// LeastPending routes to the endpoint with the shallowest queue — the
// "less used service instances" strategy of the paper's future work. Ties
// break round-robin to avoid thundering on one instance.
type LeastPending struct {
	depth DepthFunc
	mu    sync.Mutex
	n     uint64
}

// NewLeastPending returns a queue-depth-aware balancer.
func NewLeastPending(depth DepthFunc) *LeastPending {
	return &LeastPending{depth: depth}
}

// Pick implements Balancer.
func (b *LeastPending) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	b.mu.Lock()
	offset := b.n
	b.n++
	b.mu.Unlock()
	best := -1
	bestDepth := 0
	for i := range eps {
		j := (int(offset) + i) % len(eps)
		d := b.depth(eps[j].ServiceUID)
		if best == -1 || d < bestDepth {
			best, bestDepth = j, d
		}
	}
	return eps[best], nil
}

package states

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func TestTaskHappyPath(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0001", TaskModel(), clk)
	path := []State{
		TaskTmgrScheduling, TaskStagingInput, TaskScheduling,
		TaskExecuting, TaskStagingOutput, TaskDone,
	}
	for _, s := range path {
		clk.Advance(time.Second)
		if err := m.To(s); err != nil {
			t.Fatalf("To(%s): %v", s, err)
		}
	}
	if !m.IsFinal() {
		t.Fatal("DONE not final")
	}
	if got := len(m.History()); got != len(path)+1 {
		t.Fatalf("history length %d, want %d", got, len(path)+1)
	}
}

func TestServiceHappyPath(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("service.0001", ServiceModel(), clk)
	path := []State{
		ServiceSmgrScheduling, ServiceStagingInput, ServiceScheduling,
		ServiceLaunching, ServiceInitializing, ServicePublishing,
		ServiceActive, ServiceDraining, ServiceDone,
	}
	for _, s := range path {
		if err := m.To(s); err != nil {
			t.Fatalf("To(%s): %v", s, err)
		}
	}
}

func TestPilotHappyPath(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("pilot.0000", PilotModel(), clk)
	for _, s := range []State{PilotLaunching, PilotActive, PilotDone} {
		if err := m.To(s); err != nil {
			t.Fatalf("To(%s): %v", s, err)
		}
	}
}

func TestIllegalTransitionRejected(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0002", TaskModel(), clk)
	err := m.To(TaskExecuting) // NEW → EXECUTING skips four states
	if err == nil {
		t.Fatal("illegal transition accepted")
	}
	var te *TransitionError
	if !errors.As(err, &te) {
		t.Fatalf("error type %T, want *TransitionError", err)
	}
	if te.From != TaskNew || te.To != TaskExecuting {
		t.Fatalf("TransitionError = %+v", te)
	}
	if m.Current() != TaskNew {
		t.Fatal("machine moved despite rejection")
	}
}

func TestNoEscapeFromFinalStates(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	for _, model := range []*Model{TaskModel(), ServiceModel(), PilotModel()} {
		for _, s := range model.States() {
			if !model.IsFinal(s) {
				continue
			}
			for _, to := range model.States() {
				if model.CanTransition(s, to) {
					t.Errorf("%s: final state %s has edge to %s", model.Entity(), s, to)
				}
			}
		}
	}
	_ = clk
}

func TestEveryNonFinalStateCanFail(t *testing.T) {
	for _, model := range []*Model{TaskModel(), ServiceModel(), PilotModel()} {
		var failed State
		switch model.Entity() {
		case EntityPilot:
			failed = PilotFailed
		case EntityService:
			failed = ServiceFailed
		default:
			failed = TaskFailed
		}
		for _, s := range model.States() {
			if model.IsFinal(s) {
				continue
			}
			if !model.CanTransition(s, failed) {
				t.Errorf("%s: state %s cannot fail", model.Entity(), s)
			}
		}
	}
}

func TestFailHelper(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	cases := []struct {
		model *Model
		want  State
	}{
		{TaskModel(), TaskFailed},
		{ServiceModel(), ServiceFailed},
		{PilotModel(), PilotFailed},
	}
	for _, c := range cases {
		m := NewMachine("x", c.model, clk)
		if err := m.Fail(); err != nil {
			t.Fatalf("%s Fail: %v", c.model.Entity(), err)
		}
		if m.Current() != c.want {
			t.Fatalf("%s Fail → %s, want %s", c.model.Entity(), m.Current(), c.want)
		}
	}
}

func TestHistoryTimestamps(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0003", TaskModel(), clk)
	clk.Advance(3 * time.Second)
	_ = m.To(TaskTmgrScheduling)
	clk.Advance(5 * time.Second)
	_ = m.To(TaskStagingInput)

	at, ok := m.EnteredAt(TaskTmgrScheduling)
	if !ok || !at.Equal(origin.Add(3*time.Second)) {
		t.Fatalf("EnteredAt(TMGR_SCHEDULING) = %v/%v", at, ok)
	}
	d, ok := m.Between(TaskTmgrScheduling, TaskStagingInput)
	if !ok || d != 5*time.Second {
		t.Fatalf("Between = %v/%v, want 5s", d, ok)
	}
	if _, ok := m.Between(TaskTmgrScheduling, TaskDone); ok {
		t.Fatal("Between reported ok for never-entered state")
	}
}

func TestCallbacksFire(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0004", TaskModel(), clk)
	var mu sync.Mutex
	var got []State
	m.OnTransition(func(uid string, from, to State, at time.Time) {
		if uid != "task.0004" {
			t.Errorf("callback uid = %q", uid)
		}
		mu.Lock()
		got = append(got, to)
		mu.Unlock()
	})
	_ = m.To(TaskTmgrScheduling)
	_ = m.To(TaskStagingInput)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != TaskTmgrScheduling || got[1] != TaskStagingInput {
		t.Fatalf("callback sequence = %v", got)
	}
}

func TestWaitChan(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0005", TaskModel(), clk)
	ch := m.WaitChan()
	_ = m.To(TaskTmgrScheduling)
	select {
	case s := <-ch:
		if s != TaskTmgrScheduling {
			t.Fatalf("WaitChan delivered %s", s)
		}
	default:
		t.Fatal("WaitChan did not deliver")
	}
	// one-shot: further transitions do not re-notify this channel
	_ = m.To(TaskStagingInput)
	select {
	case s := <-ch:
		t.Fatalf("WaitChan re-fired with %s", s)
	default:
	}
}

func TestConcurrentTransitionsOnlyOneWins(t *testing.T) {
	clk := simtime.NewVirtual(origin)
	m := NewMachine("task.0006", TaskModel(), clk)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = m.To(TaskTmgrScheduling)
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		if err == nil {
			okCount++
		}
	}
	if okCount != 1 {
		t.Fatalf("%d concurrent transitions succeeded, want exactly 1", okCount)
	}
}

func TestMachineLegalityProperty(t *testing.T) {
	// Property: replaying any random walk over To() never leaves the machine
	// in a state unreachable via legal edges, and history grows only on
	// success.
	models := []*Model{TaskModel(), ServiceModel(), PilotModel()}
	f := func(seedSteps []uint8, which uint8) bool {
		model := models[int(which)%len(models)]
		all := model.States()
		clk := simtime.NewVirtual(origin)
		m := NewMachine("prop", model, clk)
		for _, b := range seedSteps {
			target := all[int(b)%len(all)]
			prev := m.Current()
			hlen := len(m.History())
			err := m.To(target)
			if err == nil {
				if !model.CanTransition(prev, target) {
					return false // accepted illegal edge
				}
				if len(m.History()) != hlen+1 {
					return false
				}
			} else {
				if m.Current() != prev || len(m.History()) != hlen {
					return false // mutated on failure
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModelAccessors(t *testing.T) {
	m := ServiceModel()
	if m.Entity() != EntityService {
		t.Fatalf("Entity = %s", m.Entity())
	}
	if m.Initial() != ServiceNew {
		t.Fatalf("Initial = %s", m.Initial())
	}
	if len(m.States()) < 10 {
		t.Fatalf("service model has %d states", len(m.States()))
	}
}

package stager

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newMgr() (*Manager, *simtime.Scaled) {
	clk := simtime.NewScaled(100000, origin)
	return NewManager(clk, rng.New(1)), clk
}

func TestSplitURI(t *testing.T) {
	cases := []struct {
		in, plat, path string
	}{
		{"delta:/scratch/data", "delta", "/scratch/data"},
		{"/local/path", "", "/local/path"},
		{"r3:/models/llama", "r3", "/models/llama"},
	}
	for _, c := range cases {
		plat, path := SplitURI(c.in)
		if plat != c.plat || path != c.path {
			t.Errorf("SplitURI(%q) = %q, %q", c.in, plat, path)
		}
	}
}

func TestStageLinkConstantTime(t *testing.T) {
	m, _ := newMgr()
	d, err := m.Stage(spec.StagingDirective{
		Source: "delta:/a", Target: "delta:/b", Bytes: 1 << 40, Mode: spec.StageLink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d != time.Millisecond {
		t.Fatalf("link staging of 1TB took %v, want constant 1ms", d)
	}
}

func TestStageCopyBandwidth(t *testing.T) {
	m, _ := newMgr()
	m.SetLink("delta", "delta", Link{BytesPerSec: 1e9, Latency: rng.ConstDuration(10 * time.Millisecond)})
	d, err := m.Stage(spec.StagingDirective{
		Source: "delta:/a", Target: "delta:/b", Bytes: 2e9, Mode: spec.StageCopy,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2*time.Second + 10*time.Millisecond
	if d < want-time.Millisecond || d > want+time.Millisecond {
		t.Fatalf("copy of 2GB at 1GB/s = %v, want %v", d, want)
	}
}

func TestStageTransferDefaultWAN(t *testing.T) {
	m, _ := newMgr()
	// no link registered: cross-platform transfer uses the WAN default
	d, err := m.Stage(spec.StagingDirective{
		Source: "globus:/cellpainting", Target: "delta:/scratch/cp", Bytes: int64(1.25e9), Mode: spec.StageTransfer,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1.25 GB at 1.25 GB/s ≈ 1s plus 50ms setup
	if d < 900*time.Millisecond || d > 1300*time.Millisecond {
		t.Fatalf("WAN transfer = %v, want ≈1.05s", d)
	}
}

func TestStageInvalidDirective(t *testing.T) {
	m, _ := newMgr()
	if _, err := m.Stage(spec.StagingDirective{Source: "", Target: "x", Mode: spec.StageCopy}); err == nil {
		t.Fatal("accepted invalid directive")
	}
}

func TestStageRegistersObject(t *testing.T) {
	m, _ := newMgr()
	_, err := m.Stage(spec.StagingDirective{
		Source: "delta:/a", Target: "delta:/b", Bytes: 42, Mode: spec.StageLink,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := m.Lookup("delta:/b")
	if !ok || obj.Bytes != 42 {
		t.Fatalf("Lookup = %+v, %v", obj, ok)
	}
	if _, ok := m.Lookup("delta:/a"); ok {
		t.Fatal("source registered as object")
	}
}

func TestStageAllSequential(t *testing.T) {
	m, _ := newMgr()
	ds := []spec.StagingDirective{
		{Source: "delta:/a", Target: "delta:/b", Bytes: 1, Mode: spec.StageLink},
		{Source: "delta:/b", Target: "delta:/c", Bytes: 1, Mode: spec.StageLink},
	}
	total, err := m.StageAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2*time.Millisecond {
		t.Fatalf("total = %v", total)
	}
	if len(m.Objects()) != 2 {
		t.Fatalf("objects = %d", len(m.Objects()))
	}
}

func TestStageAllStopsOnError(t *testing.T) {
	m, _ := newMgr()
	ds := []spec.StagingDirective{
		{Source: "delta:/a", Target: "delta:/b", Bytes: 1, Mode: spec.StageLink},
		{Source: "", Target: "delta:/c", Mode: spec.StageLink},
		{Source: "delta:/c", Target: "delta:/d", Bytes: 1, Mode: spec.StageLink},
	}
	if _, err := m.StageAll(ds); err == nil {
		t.Fatal("StageAll swallowed the error")
	}
	if _, ok := m.Lookup("delta:/d"); ok {
		t.Fatal("StageAll continued past the error")
	}
}

func TestObjectsSorted(t *testing.T) {
	m, _ := newMgr()
	for _, uri := range []string{"delta:/z", "delta:/a", "delta:/m"} {
		m.Stage(spec.StagingDirective{Source: "delta:/src", Target: uri, Bytes: 1, Mode: spec.StageLink}) //nolint:errcheck
	}
	objs := m.Objects()
	if objs[0].URI != "delta:/a" || objs[2].URI != "delta:/z" {
		t.Fatalf("objects unsorted: %+v", objs)
	}
}

func TestBytesUnder(t *testing.T) {
	m, _ := newMgr()
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/data/x", Bytes: 100, Mode: spec.StageLink}) //nolint:errcheck
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/data/y", Bytes: 200, Mode: spec.StageLink}) //nolint:errcheck
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/other", Bytes: 999, Mode: spec.StageLink})  //nolint:errcheck
	if got := m.BytesUnder("delta:/data/"); got != 300 {
		t.Fatalf("BytesUnder = %d, want 300", got)
	}
}

func TestWaitBytesGate(t *testing.T) {
	// the §II-A gate: training starts only once enough processed data are
	// staged
	m, _ := newMgr()
	ch := m.WaitBytes("delta:/processed/", 250)
	select {
	case <-ch:
		t.Fatal("gate opened with no data")
	default:
	}
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/processed/a", Bytes: 100, Mode: spec.StageLink}) //nolint:errcheck
	select {
	case <-ch:
		t.Fatal("gate opened below threshold")
	default:
	}
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/processed/b", Bytes: 200, Mode: spec.StageLink}) //nolint:errcheck
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("gate never opened")
	}
}

func TestWaitBytesAlreadySatisfied(t *testing.T) {
	m, _ := newMgr()
	m.Stage(spec.StagingDirective{Source: "s", Target: "delta:/d/a", Bytes: 500, Mode: spec.StageLink}) //nolint:errcheck
	select {
	case <-m.WaitBytes("delta:/d/", 100):
	default:
		t.Fatal("pre-satisfied gate not closed immediately")
	}
}

func TestLinkResolutionWildcards(t *testing.T) {
	m, _ := newMgr()
	m.SetLink("*", "*", Link{BytesPerSec: 1, Latency: rng.ConstDuration(0)})
	m.SetLink("delta", "*", Link{BytesPerSec: 2, Latency: rng.ConstDuration(0)})
	m.SetLink("delta", "r3", Link{BytesPerSec: 3, Latency: rng.ConstDuration(0)})
	if l, _ := m.linkFor("delta", "r3"); l.BytesPerSec != 3 {
		t.Fatalf("exact match not preferred: %v", l.BytesPerSec)
	}
	if l, _ := m.linkFor("delta", "frontier"); l.BytesPerSec != 2 {
		t.Fatalf("src wildcard not preferred: %v", l.BytesPerSec)
	}
	if l, _ := m.linkFor("r3", "frontier"); l.BytesPerSec != 1 {
		t.Fatalf("full wildcard not used: %v", l.BytesPerSec)
	}
}

package router

import "repro/internal/spec"

// withRetry wraps a blind router with shape-aware retries: when the inner
// router's pick could never run the task (no node shape of that pilot
// covers the demand), the wrapper asks the inner router again — up to one
// full pass over the targets — instead of letting the task land on a
// pilot whose scheduler will reject it as unsatisfiable. When no target
// at all could ever fit, it rejects with ErrUnroutable at submit, exactly
// like the shape-aware routers.
//
// The wrapper never perturbs the inner router's sequence for routable
// tasks: a pick that can run the task is returned as-is, so a
// round-robin+retry session dispatches byte-for-byte like plain
// round-robin until the first task that would have wedged — graceful
// degradation without changing the pinned default dispatch.
type withRetry struct{ inner Router }

// WithRetry wraps inner with retry-on-unsatisfiable semantics. Wrapping a
// shape-aware router is harmless (its picks always pass the fit check on
// the first try).
func WithRetry(inner Router) Router { return &withRetry{inner: inner} }

// Name implements Router.
func (r *withRetry) Name() string { return r.inner.Name() + "+retry" }

// RankDrain implements Ranker, forwarding the inner router's drain
// ranking so wrapping never loses the capability ("capacity-fit+retry"
// keeps the fits-now-first overflow drain). An inner router without a
// ranking keeps submission order (the identity permutation).
func (r *withRetry) RankDrain(target Target, descs []spec.TaskDescription) []int {
	if rk, ok := r.inner.(Ranker); ok {
		return rk.RankDrain(target, descs)
	}
	order := make([]int, len(descs))
	for i := range order {
		order[i] = i
	}
	return order
}

// Route implements Router.
func (r *withRetry) Route(targets []Target, d spec.TaskDescription) (int, error) {
	if len(targets) == 0 {
		return 0, ErrNoTargets
	}
	anyFits := false
	for _, t := range targets {
		if everFits(t.Shapes(), d) {
			anyFits = true
			break
		}
	}
	if !anyFits {
		name := d.UID
		if name == "" {
			name = d.Name
		}
		return 0, ErrUnroutable{Task: name, Cores: d.Cores, GPUs: d.GPUs, MemGB: d.MemGB}
	}
	// Some target fits, so at most len(targets) inner picks reach it even
	// for a strict-rotation inner router; bail to the first fitting target
	// afterwards for inner routers with degenerate selection state.
	var i int
	var err error
	for attempt := 0; attempt < len(targets); attempt++ {
		i, err = r.inner.Route(targets, d)
		if err != nil {
			return 0, err
		}
		if everFits(targets[i].Shapes(), d) {
			return i, nil
		}
	}
	for j, t := range targets {
		if everFits(t.Shapes(), d) {
			return j, nil
		}
	}
	return i, nil // unreachable: anyFits guarantees the loop above returns
}

package simtime

// Runners is the optional runnability-accounting interface of a Clock.
// An auto-advancing Virtual clock only moves time forward when every
// registered goroutine is parked, so components that hand work between
// goroutines over channels must tell the clock about those handoffs:
//
//   - AddRunner/DoneRunner bracket the lifetime of a goroutine that
//     participates in simulated time.
//   - Block marks the calling registered goroutine as parked on something
//     other than the clock (a channel receive, a WaitGroup); Unblock marks
//     it runnable again. A goroutine that wakes another via a channel send
//     calls Unblock on the sleeper's behalf (a wake token) so the clock
//     never advances while a wakeup is still in flight.
//
// The contract is asymmetric by design: a transient overcount (an extra
// Unblock before the matching Block lands) merely pauses advancement until
// the counts settle, while an undercount would let the clock advance
// concurrently with runnable goroutines and destroy determinism. Protocols
// built on Runners therefore always issue the wake token before the wake
// itself.
type Runners interface {
	// AddRunner registers the calling (or an about-to-start) goroutine.
	AddRunner()
	// DoneRunner deregisters a goroutine registered with AddRunner.
	DoneRunner()
	// Block marks the calling registered goroutine as not runnable.
	Block()
	// Unblock marks a registered goroutine as runnable again.
	Unblock()
}

// RunnersOf returns c's runnability accounting when the clock keeps one
// (a *Virtual; inert outside auto-advance mode), or nil for clocks that
// advance on their own (Real, Scaled). Callers gate their accounting calls
// on the nil check, so the same code runs unchanged on every clock.
func RunnersOf(c Clock) Runners {
	if r, ok := c.(Runners); ok {
		return r
	}
	return nil
}

package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRouteCapacityFitRunsWhatRoundRobinWedges runs the routing ablation
// end to end at reduced scale: on the hetero campus split into a fat and
// a thin pilot, blind round-robin dispatch sends every second
// whole-fat-node task to the thin pilot — where no node shape can ever
// run it — while capacity-fit completes all of them. The outcome is
// deterministic: round-robin alternates pilots in submission order.
func TestRouteCapacityFitRunsWhatRoundRobinWedges(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cfg := DefaultRouteConfig()
	cfg.FatTasks = 4
	cfg.ThinTasks = 8
	cfg.Routers = []string{"round-robin", "capacity-fit"}
	res, err := RunRoute(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	rr, cf := res.Rows[0], res.Rows[1]
	if rr.Router != "round-robin" || cf.Router != "capacity-fit" {
		t.Fatalf("row routers = %q/%q", rr.Router, cf.Router)
	}
	// Round-robin: fat tasks at even submission positions land on the fat
	// pilot (attached first), odd positions on the thin pilot and fail.
	if rr.FatDone != 2 || rr.FatFailed != 2 {
		t.Fatalf("round-robin fat outcome = %d done / %d failed, want 2/2", rr.FatDone, rr.FatFailed)
	}
	if rr.ThinDone != cfg.ThinTasks {
		t.Fatalf("round-robin thin done = %d, want %d", rr.ThinDone, cfg.ThinTasks)
	}
	// Capacity-fit: every shape-constrained task reaches the only pilot
	// that can ever run it.
	if cf.FatDone != cfg.FatTasks || cf.FatFailed != 0 {
		t.Fatalf("capacity-fit fat outcome = %d done / %d failed, want %d/0",
			cf.FatDone, cf.FatFailed, cfg.FatTasks)
	}
	if cf.ThinDone != cfg.ThinTasks || cf.Rejected != 0 {
		t.Fatalf("capacity-fit thin done = %d rejected = %d", cf.ThinDone, cf.Rejected)
	}
}

// TestRouteRejectsHomogeneousPlatform pins the guard: mismatched pilots
// need a mixed platform.
func TestRouteRejectsHomogeneousPlatform(t *testing.T) {
	cfg := DefaultRouteConfig()
	cfg.Platform = "delta"
	if _, err := RunRoute(context.Background(), cfg); err == nil {
		t.Fatal("RunRoute accepted a homogeneous platform")
	}
}

func TestRouteTableRendering(t *testing.T) {
	res := &RouteResult{
		Cfg:             RouteConfig{Platform: "hetero", FatTasks: 32, ThinTasks: 96},
		FatPilotShapes:  "32×128c/16g",
		ThinPilotShapes: "96×16c/0g",
		FatCores:        128, FatGPUs: 16, ThinCores: 16,
		Rows: []RouteRow{
			{Router: "round-robin", FatDone: 16, FatFailed: 16, ThinDone: 96},
			{Router: "capacity-fit", FatDone: 32, ThinDone: 96},
		},
	}
	out := res.Table().Render()
	for _, want := range []string{"round-robin", "capacity-fit", "16/32", "32/32", "96/96"} {
		if !strings.Contains(out, want) {
			t.Fatalf("route table missing %q:\n%s", want, out)
		}
	}
}

// TestFragChurnBestFitWinSurvivesTurnover runs the steady-state
// fragmentation variant at reduced scale. With 24 smalls (12 permanent,
// 12 transient) the end state is deterministic on the hetero campus:
// first-fit pins fat nodes 0-1 fragmented forever (node 1 keeps 4
// permanent holders), so 30 of 32 larges run once the transient releases
// drain — the turnover hands back most, but not all, of best-fit's
// non-churn win (29/32) — while best-fit still runs every large AND
// every arriving small.
func TestFragChurnBestFitWinSurvivesTurnover(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cfg := DefaultFragConfig()
	cfg.Smalls = 24
	cfg.Churn = true
	res, err := RunFrag(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	strict, best := res.Rows[0], res.Rows[1]
	total := res.Cfg.TotalSmalls() // 24 + 2 waves × 6
	if total != 36 {
		t.Fatalf("TotalSmalls = %d, want 36", total)
	}
	if strict.LargeGranted != 30 {
		t.Fatalf("strict granted %d larges under churn, want 30 (2 fat nodes pinned by permanent holders)",
			strict.LargeGranted)
	}
	if best.LargeGranted != res.Cfg.Larges {
		t.Fatalf("best-fit granted %d larges under churn, want all %d", best.LargeGranted, res.Cfg.Larges)
	}
	// Under strict the ungrantable large head blocks every arriving wave;
	// best-fit keeps the arrivals flowing through the thin partition.
	if strict.SmallGranted != cfg.Smalls {
		t.Fatalf("strict small grants = %d, want %d (waves blocked behind the large head)",
			strict.SmallGranted, cfg.Smalls)
	}
	if best.SmallGranted != total {
		t.Fatalf("best-fit small grants = %d, want all %d arrivals", best.SmallGranted, total)
	}
	if best.Waiting != 0 {
		t.Fatalf("best-fit waiting = %d, want 0", best.Waiting)
	}
}

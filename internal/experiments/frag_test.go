package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFragBestFitBeatsFirstFitOnHeteroCampus runs the fragmentation
// ablation end to end on the catalog's mixed platform at reduced scale:
// under identical workloads best-fit must grant strictly more large
// (whole-fat-node) tasks than first-fit, leave fewer requests waiting,
// and never lose a small grant doing so.
func TestFragBestFitBeatsFirstFitOnHeteroCampus(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cfg := DefaultFragConfig()
	cfg.Smalls = 24 // fragments 3 fat nodes under first-fit
	res, err := RunFrag(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v, want strict + best-fit", res.Rows)
	}
	strict, best := res.Rows[0], res.Rows[1]
	if strict.Policy != "strict" || best.Policy != "best-fit" {
		t.Fatalf("row policies = %q/%q", strict.Policy, best.Policy)
	}
	if strict.SmallGranted != cfg.Smalls || best.SmallGranted != cfg.Smalls {
		t.Fatalf("small grants = %d/%d, want all %d under both policies",
			strict.SmallGranted, best.SmallGranted, cfg.Smalls)
	}
	if best.LargeGranted <= strict.LargeGranted {
		t.Fatalf("best-fit granted %d larges, first-fit %d: fragmentation win not reproduced",
			best.LargeGranted, strict.LargeGranted)
	}
	if best.Waiting >= strict.Waiting {
		t.Fatalf("waiting: best-fit %d, strict %d", best.Waiting, strict.Waiting)
	}
	// On the 32-fat/96-thin campus the outcome is deterministic: 24
	// thin-shaped smalls consume 3 whole fat nodes under first-fit
	// (8×16c each) and zero under best-fit.
	if want := res.Cfg.Larges - 3; strict.LargeGranted != want {
		t.Fatalf("strict granted %d larges, want %d (3 fat nodes fragmented)", strict.LargeGranted, want)
	}
	if best.LargeGranted != res.Cfg.Larges {
		t.Fatalf("best-fit granted %d larges, want all %d", best.LargeGranted, res.Cfg.Larges)
	}
	if best.Waiting != 0 || best.GPUUtil != 1 {
		t.Fatalf("best-fit end state: waiting %d, gpu util %.3f, want 0 and 1.0", best.Waiting, best.GPUUtil)
	}
}

func TestFragTableRendering(t *testing.T) {
	res := &FragResult{
		Cfg:        FragConfig{Platform: "hetero", Policy: "best-fit", Smalls: 96, Larges: 32},
		Shapes:     "32×128c/16g + 96×16c/0g",
		SmallCores: 16, LargeCores: 128, LargeGPUs: 16,
		Rows: []FragRow{
			{Policy: "strict", SmallGranted: 96, LargeGranted: 20, Waiting: 12, CoreUtil: 0.727, GPUUtil: 0.625},
			{Policy: "best-fit", SmallGranted: 96, LargeGranted: 32, Waiting: 0, CoreUtil: 1, GPUUtil: 1},
		},
	}
	out := res.Table().Render()
	for _, want := range []string{"hetero", "32×128c/16g + 96×16c/0g", "strict", "best-fit", "20/32", "32/32"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fragmentation table missing %q:\n%s", want, out)
		}
	}
}

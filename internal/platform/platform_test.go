package platform

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestNodeAllocRelease(t *testing.T) {
	n := NewNode("n0", NodeSpec{Cores: 8, GPUs: 2, MemGB: 64})
	a := n.TryAlloc(4, 1, 16)
	if a == nil {
		t.Fatal("TryAlloc failed on idle node")
	}
	if n.FreeCores() != 4 || n.FreeGPUs() != 1 || n.FreeMemGB() != 48 {
		t.Fatalf("free after alloc = %d cores, %d gpus, %v GB", n.FreeCores(), n.FreeGPUs(), n.FreeMemGB())
	}
	a.Release()
	if n.FreeCores() != 8 || n.FreeGPUs() != 2 || n.FreeMemGB() != 64 {
		t.Fatal("release did not restore resources")
	}
}

func TestNodeAllocExhaustion(t *testing.T) {
	n := NewNode("n0", NodeSpec{Cores: 4, GPUs: 1, MemGB: 8})
	if a := n.TryAlloc(5, 0, 0); a != nil {
		t.Fatal("allocated more cores than exist")
	}
	if a := n.TryAlloc(0, 2, 0); a != nil {
		t.Fatal("allocated more GPUs than exist")
	}
	if a := n.TryAlloc(0, 0, 9); a != nil {
		t.Fatal("allocated more memory than exists")
	}
	if a := n.TryAlloc(-1, 0, 0); a != nil {
		t.Fatal("accepted negative request")
	}
}

func TestNodeDoubleReleaseIsSafe(t *testing.T) {
	n := NewNode("n0", NodeSpec{Cores: 2, GPUs: 0, MemGB: 4})
	a := n.TryAlloc(2, 0, 4)
	a.Release()
	a.Release()
	if n.FreeCores() != 2 || n.FreeMemGB() != 4 {
		t.Fatal("double release corrupted accounting")
	}
}

func TestNodeAllocDeterministicSlots(t *testing.T) {
	n := NewNode("n0", NodeSpec{Cores: 4, GPUs: 2, MemGB: 8})
	a := n.TryAlloc(2, 1, 0)
	if a.Cores[0] != 0 || a.Cores[1] != 1 || a.GPUs[0] != 0 {
		t.Fatalf("slots = cores %v gpus %v, want lowest-first", a.Cores, a.GPUs)
	}
	b := n.TryAlloc(1, 1, 0)
	if b.Cores[0] != 2 || b.GPUs[0] != 1 {
		t.Fatalf("second alloc slots = cores %v gpus %v", b.Cores, b.GPUs)
	}
}

func TestNodeConcurrentAllocConservation(t *testing.T) {
	n := NewNode("n0", NodeSpec{Cores: 64, GPUs: 8, MemGB: 512})
	var mu sync.Mutex
	var allocs []*Allocation
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a := n.TryAlloc(4, 1, 16); a != nil {
				mu.Lock()
				allocs = append(allocs, a)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// only 8 GPU slots exist → at most 8 allocations may succeed
	if len(allocs) != 8 {
		t.Fatalf("%d allocations succeeded, want 8 (GPU-bound)", len(allocs))
	}
	seen := map[int]bool{}
	for _, a := range allocs {
		for _, g := range a.GPUs {
			if seen[g] {
				t.Fatalf("GPU slot %d allocated twice", g)
			}
			seen[g] = true
		}
	}
	for _, a := range allocs {
		a.Release()
	}
	if n.FreeCores() != 64 || n.FreeGPUs() != 8 {
		t.Fatal("resources leaked after concurrent alloc/release")
	}
}

func TestAllocConservationProperty(t *testing.T) {
	// Property: any interleaving of TryAlloc/Release never over-allocates
	// and always restores the idle state after all releases.
	f := func(reqs []uint8) bool {
		n := NewNode("p", NodeSpec{Cores: 16, GPUs: 4, MemGB: 32})
		var live []*Allocation
		for _, r := range reqs {
			cores := int(r % 5)
			gpus := int((r >> 3) % 3)
			if a := n.TryAlloc(cores, gpus, float64(r%8)); a != nil {
				live = append(live, a)
			}
			if n.FreeCores() < 0 || n.FreeGPUs() < 0 || n.FreeMemGB() < 0 {
				return false
			}
			if len(live) > 2 { // release the oldest to churn
				live[0].Release()
				live = live[1:]
			}
		}
		for _, a := range live {
			a.Release()
		}
		return n.FreeCores() == 16 && n.FreeGPUs() == 4 && n.FreeMemGB() == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformTotals(t *testing.T) {
	p := New("test", 4, NodeSpec{Cores: 64, GPUs: 4, MemGB: 256})
	if p.TotalCores() != 256 || p.TotalGPUs() != 16 {
		t.Fatalf("totals = %d cores, %d gpus", p.TotalCores(), p.TotalGPUs())
	}
	if p.FreeCores() != 256 || p.FreeGPUs() != 16 {
		t.Fatal("fresh platform not fully free")
	}
	c, g := p.Utilization()
	if c != 0 || g != 0 {
		t.Fatalf("idle utilization = %v/%v", c, g)
	}
	p.Nodes()[0].TryAlloc(64, 4, 0)
	c, g = p.Utilization()
	if c != 0.25 || g != 0.25 {
		t.Fatalf("utilization = %v/%v, want 0.25/0.25", c, g)
	}
}

func TestPlatformNodeLookup(t *testing.T) {
	p := New("test", 2, NodeSpec{Cores: 1})
	if p.Node("test-node0001") == nil {
		t.Fatal("Node lookup failed")
	}
	if p.Node("nope") != nil {
		t.Fatal("Node lookup invented a node")
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 nodes did not panic")
		}
	}()
	New("bad", 0, NodeSpec{})
}

func TestAddrRoundTrip(t *testing.T) {
	addr := Addr("delta", "delta-node0001", "service.0003")
	p, n, e, err := ParseAddr(addr)
	if err != nil || p != "delta" || n != "delta-node0001" || e != "service.0003" {
		t.Fatalf("ParseAddr = %q %q %q %v", p, n, e, err)
	}
	addr = Addr("delta", "", "client.0001")
	p, n, e, err = ParseAddr(addr)
	if err != nil || p != "delta" || n != "" || e != "client.0001" {
		t.Fatalf("ParseAddr(node-less) = %q %q %q %v", p, n, e, err)
	}
	if _, _, _, err := ParseAddr("garbage"); err == nil {
		t.Fatal("ParseAddr accepted malformed address")
	}
}

func TestLaunchModelSaturation(t *testing.T) {
	src := rng.New(42)
	m := LaunchModel{
		Base:       rng.ConstDuration(2 * time.Second),
		Saturation: 160,
		PenaltyExp: 1.6,
	}
	low := m.Sample(src, 1)
	at := m.Sample(src, 160)
	over := m.Sample(src, 640)
	if low != 2*time.Second || at != 2*time.Second {
		t.Fatalf("below-saturation samples %v/%v, want 2s", low, at)
	}
	if over <= 2*time.Second {
		t.Fatalf("sample at 640 = %v, want > base", over)
	}
	// 640/160 = 4; 4^1.6 ≈ 9.19 → ~18.4s total
	if over < 15*time.Second || over > 22*time.Second {
		t.Fatalf("sample at 640 = %v, want ≈18s", over)
	}
}

func TestLaunchModelNoSaturation(t *testing.T) {
	src := rng.New(1)
	m := LaunchModel{Base: rng.ConstDuration(time.Second)}
	if d := m.Sample(src, 100000); d != time.Second {
		t.Fatalf("unsaturated model sample = %v", d)
	}
}

func TestCatalogShapes(t *testing.T) {
	f := NewFrontier()
	if got := f.TotalGPUs(); got != 640 {
		t.Fatalf("Frontier GPUs = %d, want 640 (paper Exp 1 pilot)", got)
	}
	d := NewDelta()
	if d.TotalCores() != 256 || d.TotalGPUs() != 16 {
		t.Fatalf("Delta = %d cores / %d GPUs, want 256/16 (Table II)", d.TotalCores(), d.TotalGPUs())
	}
	r := NewR3()
	if r.TotalGPUs() < 16 {
		t.Fatalf("R3 GPUs = %d, want >= 16 for the remote sweeps", r.TotalGPUs())
	}
}

func TestCatalogLatencies(t *testing.T) {
	d := NewDelta()
	src := rng.New(7)
	const n = 2000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += d.LocalLatency.Sample(src)
	}
	mean := sum / n
	if mean < 50*time.Microsecond || mean > 80*time.Microsecond {
		t.Fatalf("Delta local latency mean = %v, want ≈63µs", mean)
	}
	wan := d.WANLatency["r3"]
	sum = 0
	for i := 0; i < n; i++ {
		sum += wan.Sample(src)
	}
	mean = sum / n
	if mean < 430*time.Microsecond || mean > 510*time.Microsecond {
		t.Fatalf("Delta→R3 latency mean = %v, want ≈470µs", mean)
	}
}

func TestTopologyResolver(t *testing.T) {
	topo := DefaultTopology()
	resolve := topo.Resolver()
	src := rng.New(3)

	sameNode := resolve(
		Addr("delta", "delta-node0000", "task.1"),
		Addr("delta", "delta-node0000", "service.1"))
	interNode := resolve(
		Addr("delta", "delta-node0000", "task.1"),
		Addr("delta", "delta-node0001", "service.1"))
	wan := resolve(
		Addr("delta", "delta-node0000", "task.1"),
		Addr("r3", "r3-node0000", "service.1"))

	avg := func(d rng.DurationDist) time.Duration {
		var sum time.Duration
		for i := 0; i < 500; i++ {
			sum += d.Sample(src)
		}
		return sum / 500
	}
	a, b, c := avg(sameNode.Latency), avg(interNode.Latency), avg(wan.Latency)
	if !(a < b && b < c) {
		t.Fatalf("latency ordering intra=%v inter=%v wan=%v, want increasing", a, b, c)
	}
	if c < 400*time.Microsecond {
		t.Fatalf("WAN latency %v too small", c)
	}
}

func TestTopologyResolverFallbacks(t *testing.T) {
	topo := NewTopology(NewDelta())
	topo.DefaultWAN = rng.ConstDuration(time.Millisecond)
	resolve := topo.Resolver()
	src := rng.New(1)

	// unknown target platform → DefaultWAN
	p := resolve(Addr("delta", "delta-node0000", "t"), Addr("mars", "m0", "s"))
	if got := p.Latency.Sample(src); got != time.Millisecond {
		t.Fatalf("default WAN latency = %v", got)
	}
	// reverse entry: mars knows delta but not vice versa
	mars := New("mars", 1, NodeSpec{Cores: 1})
	mars.WANLatency["delta"] = rng.ConstDuration(2 * time.Millisecond)
	topo2 := NewTopology(NewDelta(), mars)
	p = topo2.Resolver()(Addr("delta", "x", "t"), Addr("mars", "m0", "s"))
	if got := p.Latency.Sample(src); got != 2*time.Millisecond {
		t.Fatalf("reverse WAN lookup = %v, want 2ms", got)
	}
	// malformed addresses → free link
	p = topo.Resolver()("garbage", "also garbage")
	if !p.Latency.IsZero() {
		t.Fatal("malformed addresses got a latency profile")
	}
}

func TestTopologyAccessors(t *testing.T) {
	topo := DefaultTopology()
	if topo.Platform("delta") == nil || topo.Platform("nope") != nil {
		t.Fatal("Platform lookup broken")
	}
	names := topo.PlatformNames()
	want := []string{"delta", "frontier", "hetero", "r3"}
	if len(names) != len(want) {
		t.Fatalf("PlatformNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PlatformNames = %v, want %v", names, want)
		}
	}
}

func TestNewMixedShapes(t *testing.T) {
	fat := NodeSpec{Cores: 64, GPUs: 8, MemGB: 512}
	thin := NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}
	p := NewMixed("mix", []NodeGroup{{Count: 2, Spec: fat}, {Count: 3, Spec: thin}})
	if len(p.Nodes()) != 5 {
		t.Fatalf("nodes = %d, want 5", len(p.Nodes()))
	}
	// Node numbering is consecutive across groups, group order preserved.
	for i, wantSpec := range []NodeSpec{fat, fat, thin, thin, thin} {
		n := p.Nodes()[i]
		if n.Spec() != wantSpec {
			t.Fatalf("node %d spec = %+v, want %+v", i, n.Spec(), wantSpec)
		}
		if want := "mix-node000" + string(rune('0'+i)); n.Name() != want {
			t.Fatalf("node %d name = %q, want %q", i, n.Name(), want)
		}
	}
	if p.TotalCores() != 2*64+3*8 || p.TotalGPUs() != 16 {
		t.Fatalf("totals = %d cores / %d gpus", p.TotalCores(), p.TotalGPUs())
	}
	shapes := p.Shapes()
	if len(shapes) != 2 || shapes[0] != (NodeGroup{2, fat}) || shapes[1] != (NodeGroup{3, thin}) {
		t.Fatalf("Shapes = %+v", shapes)
	}
	if got := FormatShapes(shapes); got != "2×64c/8g + 3×8c/0g" {
		t.Fatalf("FormatShapes = %q", got)
	}
	// A homogeneous platform compresses to one group.
	if shapes := New("homo", 4, fat).Shapes(); len(shapes) != 1 || shapes[0].Count != 4 {
		t.Fatalf("homogeneous Shapes = %+v", shapes)
	}
}

func TestNewMixedPanicsOnBadGroup(t *testing.T) {
	for _, groups := range [][]NodeGroup{
		nil,
		{},
		{{Count: 0, Spec: NodeSpec{Cores: 1}}},
		{{Count: 2, Spec: NodeSpec{Cores: 1}}, {Count: -1, Spec: NodeSpec{Cores: 1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMixed(%+v) did not panic", groups)
				}
			}()
			NewMixed("bad", groups)
		}()
	}
}

func TestHeteroCampusCatalog(t *testing.T) {
	p := NewHeteroCampus()
	shapes := p.Shapes()
	if len(shapes) != 2 {
		t.Fatalf("hetero campus shapes = %+v, want fat + thin", shapes)
	}
	if shapes[0] != (NodeGroup{HeteroFatNodes, HeteroFatSpec}) {
		t.Fatalf("fat partition = %+v", shapes[0])
	}
	if shapes[1] != (NodeGroup{HeteroThinNodes, HeteroThinSpec}) {
		t.Fatalf("thin partition = %+v", shapes[1])
	}
	// The fat partition must come first in node order: the fragmentation
	// ablation depends on first-fit landing small tasks on fat nodes.
	if p.Nodes()[0].Spec() != HeteroFatSpec {
		t.Fatal("hetero campus does not lead with the fat partition")
	}
	if p.TotalGPUs() != HeteroFatNodes*HeteroFatSpec.GPUs {
		t.Fatalf("hetero GPUs = %d", p.TotalGPUs())
	}
}

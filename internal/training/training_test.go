package training

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func vit(gpus int) Config { return ViTBase(50000, 64, 3, gpus) }

func TestConfigValidation(t *testing.T) {
	bad := Config{}
	if _, err := bad.StepTime(); err == nil {
		t.Fatal("accepted empty config")
	}
	if _, err := bad.Makespan(); err == nil {
		t.Fatal("Makespan accepted empty config")
	}
}

func TestStepsPerEpoch(t *testing.T) {
	c := ViTBase(100, 32, 1, 1)
	if got := c.StepsPerEpoch(); got != 4 { // ceil(100/32)
		t.Fatalf("StepsPerEpoch = %d, want 4", got)
	}
}

func TestMakespanPositiveAndScales(t *testing.T) {
	m1, err := vit(1).Makespan()
	if err != nil {
		t.Fatal(err)
	}
	m8, err := vit(8).Makespan()
	if err != nil {
		t.Fatal(err)
	}
	if m1 <= 0 || m8 <= 0 {
		t.Fatalf("makespans %v/%v", m1, m8)
	}
	if m8 >= m1 {
		t.Fatalf("8 GPUs (%v) not faster than 1 (%v)", m8, m1)
	}
}

func TestSpeedupSubLinear(t *testing.T) {
	// FSDP communication does not shrink with workers: speedup must be
	// positive but below ideal. Use the compute-bound llama profile, where
	// scaling to 16 GPUs is clearly profitable.
	job := Llama8B(10000, 64, 1, 1)
	for _, g := range []int{2, 4, 8, 16} {
		s, err := job.Speedup(g)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 1 {
			t.Fatalf("speedup(%d) = %v, want > 1", g, s)
		}
		if s >= float64(g) {
			t.Fatalf("speedup(%d) = %v, want sub-linear", g, s)
		}
	}
}

func TestEfficiencyDecreases(t *testing.T) {
	job := Llama8B(10000, 64, 1, 1)
	prev := 2.0
	for _, g := range []int{2, 4, 8, 16, 32} {
		e, err := job.Efficiency(g)
		if err != nil {
			t.Fatal(err)
		}
		if e >= prev {
			t.Fatalf("efficiency(%d) = %v, not decreasing (prev %v)", g, e, prev)
		}
		prev = e
	}
}

func TestCommunicationGrowsWithModel(t *testing.T) {
	small := vit(8)
	big := Llama8B(50000, 64, 3, 8)
	if small.commTime() >= big.commTime() {
		t.Fatalf("86M comm (%v) >= 8B comm (%v)", small.commTime(), big.commTime())
	}
	if vit(1).commTime() != 0 {
		t.Fatal("single-GPU job has communication cost")
	}
}

func TestDurationDistSampling(t *testing.T) {
	dd, err := vit(4).Duration()
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	m, _ := vit(4).Makespan()
	for i := 0; i < 100; i++ {
		v := dd.Sample(src)
		if v <= 0 || v > 3*m {
			t.Fatalf("sample %v wildly off modelled makespan %v", v, m)
		}
	}
	if got := dd.Mean(); got < m/2 || got > m*2 {
		t.Fatalf("dist mean %v vs makespan %v", got, m)
	}
}

func TestOptimalGPUs(t *testing.T) {
	// a tiny model communicates relatively more → saturates earlier than a
	// compute-heavy one at the same threshold
	vitBest, err := vit(1).OptimalGPUs(64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	llamaBest, err := Llama8B(50000, 64, 3, 1).OptimalGPUs(64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if vitBest < 1 || llamaBest < 1 {
		t.Fatalf("optimal widths %d/%d", vitBest, llamaBest)
	}
	if _, err := vit(1).OptimalGPUs(0, 0.5); err == nil {
		t.Fatal("accepted maxGPUs=0")
	}
}

func TestMakespanMonotoneProperty(t *testing.T) {
	// Property: more epochs never shorten a job, and in the compute-bound
	// regime (llama-8b up to 16 GPUs) more GPUs never lengthen it. (In the
	// communication-bound regime widening CAN lengthen a job — that is the
	// physically correct knee the OptimalGPUs helper exists for.)
	f := func(epochsRaw, samplesRaw, gpusRaw uint8) bool {
		epochs := int(epochsRaw%4) + 1
		samples := (int(samplesRaw%64) + 1) * 1000
		gpus := 1 << (gpusRaw % 4) // 1..8
		base := Llama8B(samples, 64, epochs, gpus)
		m0, err := base.Makespan()
		if err != nil {
			return false
		}
		longer := base
		longer.Epochs++
		m1, err := longer.Makespan()
		if err != nil {
			return false
		}
		wider := base
		wider.GPUs *= 2
		m2, err := wider.Makespan()
		if err != nil {
			return false
		}
		return m1 > m0 && m2 <= m0 && m0 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepTimeOrderOfMagnitude(t *testing.T) {
	// ViT-Base, batch 64 on one 150-TFLOPS GPU: 6*0.086e9*64 FLOPs ≈
	// 33 GFLOPs → ~0.22 ms... plus zero comm. Sanity: sub-second.
	st, err := vit(1).StepTime()
	if err != nil {
		t.Fatal(err)
	}
	if st <= 0 || st > time.Second {
		t.Fatalf("ViT step time %v out of band", st)
	}
	// llama-8b, batch 64, 1 GPU: 6*8e9*64 ≈ 3 TFLOPs → ~20s; multi-second.
	st8, err := Llama8B(1000, 64, 1, 1).StepTime()
	if err != nil {
		t.Fatal(err)
	}
	if st8 < time.Second {
		t.Fatalf("llama-8b step time %v implausibly fast", st8)
	}
}

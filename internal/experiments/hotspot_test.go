package experiments

import (
	"context"
	"testing"
	"time"
)

// testHotspotConfig is the test-scale parameterization: the figure shape
// at a quarter of the request budget so the three campaign points and the
// two failover sessions run in a few seconds of wall time.
func testHotspotConfig() HotspotConfig {
	return HotspotConfig{
		Requests: 8000,
		Interval: 250 * time.Millisecond,
	}
}

// TestHotspotAblationAcceptance drives the full ablation once and checks
// the acceptance contrast: under the identical 80%-skewed seeded stream,
// load-aware p2c must beat blind round-robin strictly at p99 and stay
// within a small band of the full-scan least-loaded oracle — at two
// probes per pick instead of a member-set scan.
func TestHotspotAblationAcceptance(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := RunHotspot(ctx, testHotspotConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d balancer rows, want 3", len(res.Rows))
	}
	rows := map[string]HotspotRow{}
	for _, row := range res.Rows {
		rows[row.Balancer] = row
		if row.Offered != int64(res.Cfg.Requests) {
			t.Errorf("%s offered %d, want %d", row.Balancer, row.Offered, res.Cfg.Requests)
		}
		if row.Completed+row.Failed != row.Offered {
			t.Errorf("%s: completed %d + failed %d != offered %d",
				row.Balancer, row.Completed, row.Failed, row.Offered)
		}
		t.Logf("%-12s p50=%v p99=%v max=%v failed=%d", row.Balancer, row.P50, row.P99, row.Max, row.Failed)
	}
	p2c, rr, least := rows["p2c"], rows["round-robin"], rows["least-loaded"]
	if p2c.P99 >= rr.P99 {
		t.Errorf("p2c p99 %v not strictly better than blind round-robin %v", p2c.P99, rr.P99)
	}
	if p2c.P99 > 2*least.P99 {
		t.Errorf("p2c p99 %v outside 2x band of least-loaded oracle %v", p2c.P99, least.P99)
	}

	if len(res.Failover) != 2 {
		t.Fatalf("got %d failover rows, want 2", len(res.Failover))
	}
	fo := map[string]FailoverRow{}
	for _, row := range res.Failover {
		fo[row.Mode] = row
		t.Logf("%-13s latency=%v generations=%d promotions=%d replacements=%d",
			row.Mode, row.Latency, row.Generations, row.Promotions, row.Replacements)
	}
	warm, cold := fo[FailoverWarm], fo[FailoverCold]
	if warm.Generations != 1 {
		t.Errorf("warm failover cost %d generations, want exactly 1", warm.Generations)
	}
	if warm.Promotions != 1 || warm.Replacements != 0 {
		t.Errorf("warm failover: promotions=%d replacements=%d, want 1/0", warm.Promotions, warm.Replacements)
	}
	if cold.Promotions != 0 || cold.Replacements != 1 {
		t.Errorf("cold failover: promotions=%d replacements=%d, want 0/1", cold.Promotions, cold.Replacements)
	}
	if warm.Latency >= cold.Latency {
		t.Errorf("warm failover latency %v not below cold re-bootstrap %v", warm.Latency, cold.Latency)
	}
}

// TestHotspotAblationDeterministicReplay pins the campaign half to exact
// replay: the same config must reproduce every count and percentile.
func TestHotspotAblationDeterministicReplay(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cfg := testHotspotConfig()
	cfg.Requests = 3000
	cfg.Standbys = -1 // campaign half only (negative skips the failover rows)

	a, err := RunHotspot(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHotspot(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		ra.Wall, rb.Wall = 0, 0 // wall time is the one legitimately varying field
		if ra != rb {
			t.Errorf("balancer %s replay diverged:\n  %+v\n  %+v", ra.Balancer, ra, rb)
		}
	}
}

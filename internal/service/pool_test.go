package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/loadbal"
	"repro/internal/proto"
	"repro/internal/spec"
)

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, nil, "c", nil, nil); err == nil {
		t.Fatal("NewPool accepted nil inputs")
	}
}

func TestPoolRoundRobinAcrossServices(t *testing.T) {
	r := newRig(t, 100000)
	var uids []string
	for i := 0; i < 3; i++ {
		inst, err := r.mgr.Submit(noopDesc("svc"))
		if err != nil {
			t.Fatal(err)
		}
		uids = append(uids, inst.UID())
	}
	waitReady(t, r, uids...)

	pool, err := NewPool(r.net, r.clock, "delta//pool-client", loadbal.NewRoundRobin(),
		func() []proto.Endpoint { return r.reg.ByModel("noop") })
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	served := map[string]int{}
	for i := 0; i < 9; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		served[reply.ServiceUID]++
	}
	if len(served) != 3 {
		t.Fatalf("requests hit %d services, want 3", len(served))
	}
	for uid, n := range served {
		if n != 3 {
			t.Fatalf("service %s served %d/9, want 3 (round robin)", uid, n)
		}
	}
}

func TestPoolNoEndpoints(t *testing.T) {
	r := newRig(t, 100000)
	pool, _ := NewPool(r.net, r.clock, "c", nil, func() []proto.Endpoint { return nil })
	defer pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err == nil {
		t.Fatal("Infer succeeded with no endpoints")
	}
}

func TestPoolPicksUpNewServices(t *testing.T) {
	r := newRig(t, 100000)
	a, _ := r.mgr.Submit(noopDesc("a"))
	waitReady(t, r, a.UID())
	pool, _ := NewPool(r.net, r.clock, "c", loadbal.NewRoundRobin(),
		func() []proto.Endpoint { return r.reg.ByModel("noop") })
	defer pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err != nil {
		t.Fatal(err)
	}
	// a second service joins; the pool must route to it without re-creation
	b, _ := r.mgr.Submit(noopDesc("b"))
	waitReady(t, r, b.UID())
	served := map[string]bool{}
	for i := 0; i < 8; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		served[reply.ServiceUID] = true
	}
	if len(served) != 2 {
		t.Fatalf("pool used %d services after join, want 2", len(served))
	}
}

func TestPoolEvictsDeadEndpoints(t *testing.T) {
	r := newRig(t, 100000)
	a, _ := r.mgr.Submit(noopDesc("a"))
	b, _ := r.mgr.Submit(noopDesc("b"))
	waitReady(t, r, a.UID(), b.UID())
	pool, _ := NewPool(r.net, r.clock, "c", loadbal.NewRoundRobin(),
		func() []proto.Endpoint { return r.reg.ByModel("noop") })
	defer pool.Close()
	// warm both connections
	for i := 0; i < 2; i++ {
		if _, _, err := pool.Infer(context.Background(), "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	// terminate a: registry shrinks to b; subsequent requests must succeed
	if err := r.mgr.Terminate(a.UID(), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		reply, _, err := pool.Infer(context.Background(), "x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if reply.ServiceUID != b.UID() {
			t.Fatalf("request served by %s after termination of %s", reply.ServiceUID, a.UID())
		}
	}
}

func TestPoolLeastPendingPrefersIdleService(t *testing.T) {
	// one llama service gets saturated; a least-pending pool must steer new
	// requests to the idle one
	r := newRig(t, 2000)
	busy, _ := r.mgr.Submit(llamaDesc("busy"))
	idle, _ := r.mgr.Submit(llamaDesc("idle"))
	waitReady(t, r, busy.UID(), idle.UID())

	depth := func(uid string) int {
		inst, ok := r.mgr.Get(uid)
		if !ok {
			return 0
		}
		return inst.QueueDepth()
	}
	pool, _ := NewPool(r.net, r.clock, "c", loadbal.NewLeastPending(depth),
		func() []proto.Endpoint {
			// fixed order: busy first, so a naive picker would choose it
			eb, _ := r.reg.Lookup(busy.UID())
			ei, _ := r.reg.Lookup(idle.UID())
			return []proto.Endpoint{eb, ei}
		})
	defer pool.Close()

	// saturate busy directly with slow requests
	cl, err := Dial(r.net, r.clock, "delta//saturator", mustEp(t, r, busy.UID()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	done := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, _ = cl.Infer(context.Background(), "slow", 2048)
			done <- struct{}{}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the queue build
	reply, _, err := pool.Infer(context.Background(), "quick", 8)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ServiceUID != idle.UID() {
		t.Fatalf("least-pending pool routed to the saturated service %s", reply.ServiceUID)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}

func mustEp(t *testing.T, r *rig, uid string) proto.Endpoint {
	t.Helper()
	ep, ok := r.reg.Lookup(uid)
	if !ok {
		t.Fatalf("no endpoint for %s", uid)
	}
	return ep
}

func TestPoolClosedRejects(t *testing.T) {
	r := newRig(t, 100000)
	a, _ := r.mgr.Submit(noopDesc("a"))
	waitReady(t, r, a.UID())
	pool, _ := NewPool(r.net, r.clock, "c", nil,
		func() []proto.Endpoint { return r.reg.ByModel("noop") })
	_ = pool.Close()
	if _, _, err := pool.Infer(context.Background(), "x", 0); err == nil {
		t.Fatal("Infer succeeded on closed pool")
	}
}

// noopDesc/llamaDesc helpers shared with service_test.go; spec import kept
// explicit for the zero-resource description contract.
var _ = spec.ServiceDescription{}

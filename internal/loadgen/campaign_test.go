package loadgen

import (
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/metrics"
)

// exactScenarios is the deterministic scenario suite for the exact-count
// tests: the catalog shapes, sized so the whole table runs in well under
// two seconds of wall time.
func exactScenarios() []Scenario {
	return []Scenario{
		{Name: "steady", Kind: KindSteady, Requests: 10000, Rate: 2000, Services: 4, Seed: 7, Interval: time.Second, TaskEvery: 1000},
		{Name: "diurnal", Kind: KindDiurnal, Requests: 10000, Rate: 2000, Services: 4, Seed: 7, Interval: time.Second},
		{Name: "hotspot", Kind: KindHotspot, Requests: 10000, Rate: 2000, Services: 4, Seed: 7, Interval: time.Second},
		{Name: "straggler", Kind: KindStraggler, Requests: 4000, Rate: 800, Services: 4, Seed: 7, Interval: time.Second},
		{Name: "churn", Kind: KindChurn, Requests: 10000, Rate: 2000, Services: 4, Seed: 7, Interval: time.Second},
	}
}

// TestLoadScenarioExactCounts pins the outcome of every scenario shape to
// exact values: offered/completed/failed counts, task-stream counts,
// failover counts, the virtual-time makespan, the sketched percentiles,
// and the per-interval offered counts (which pin the interval boundaries
// too — a request landing one interval over changes two entries). The
// campaigns are deterministic by construction, so there is nothing to
// tolerate: any drift here means the harness, the clock, or the runtime
// under test changed behaviour.
func TestLoadScenarioExactCounts(t *testing.T) {
	want := map[string]struct {
		offered, completed, failed int64
		tasksSubmitted, tasksDone  int64
		replacements, reresolved   int
		duration                   time.Duration
		p50, p99, max              time.Duration
		intervalOffered            []int64
	}{
		"steady": {
			offered: 10000, completed: 10000, failed: 0,
			tasksSubmitted: 10, tasksDone: 10,
			duration: 4947434749,
			p50:      158000, p99: 209056, max: 243006,
			intervalOffered: []int64{2002, 2022, 2025, 2000, 1951},
		},
		"diurnal": {
			offered: 10000, completed: 10000, failed: 0,
			duration: 3579808740,
			p50:      154871, p99: 209056, max: 243006,
			intervalOffered: []int64{2248, 2702, 3076, 1974},
		},
		// hotspot routes its 80% skewed mass through the p2c balancer
		// (Scenario.Balance defaults to "p2c"): the re-pinned percentiles
		// sit below the pre-balancer row (p50 158µs, p99 213.28µs, max
		// 240.641µs) because the picker spreads the hot mass off the
		// background-loaded backends.
		"hotspot": {
			offered: 10000, completed: 10000, failed: 0,
			duration: 4947427046,
			p50:      154871, p99: 209056, max: 244123,
			intervalOffered: []int64{2002, 2022, 2025, 2000, 1951},
		},
		"straggler": {
			offered: 4000, completed: 4000, failed: 0,
			duration: 4967371723,
			p50:      164448, p99: 6923798, max: 10858089,
			intervalOffered: []int64{790, 806, 802, 792, 810},
		},
		"churn": {
			offered: 10000, completed: 10000, failed: 0,
			replacements: 2, reresolved: 2,
			duration: 4947426074,
			p50:      154871, p99: 209056, max: 243565,
			intervalOffered: []int64{2002, 2022, 2025, 2000, 1951},
		},
	}

	for _, sc := range exactScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			w, ok := want[sc.Name]
			if !ok {
				t.Fatalf("no pinned expectation for scenario %q", sc.Name)
			}
			r, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if r.Offered != w.offered || r.Completed != w.completed || r.Failed != w.failed {
				t.Errorf("counts: offered=%d completed=%d failed=%d, want %d/%d/%d",
					r.Offered, r.Completed, r.Failed, w.offered, w.completed, w.failed)
			}
			if r.TasksSubmitted != w.tasksSubmitted || r.TasksDone != w.tasksDone {
				t.Errorf("tasks: submitted=%d done=%d, want %d/%d",
					r.TasksSubmitted, r.TasksDone, w.tasksSubmitted, w.tasksDone)
			}
			if r.Replacements != w.replacements || r.Reresolved != w.reresolved {
				t.Errorf("failover: replacements=%d reresolved=%d, want %d/%d",
					r.Replacements, r.Reresolved, w.replacements, w.reresolved)
			}
			if r.Duration != w.duration {
				t.Errorf("duration %d (%v), want %d (%v)", r.Duration, r.Duration, w.duration, w.duration)
			}
			if got := r.Latency.Quantile(0.50); got != w.p50 {
				t.Errorf("p50 %d (%v), want %d (%v)", got, got, w.p50, w.p50)
			}
			if got := r.Latency.Quantile(0.99); got != w.p99 {
				t.Errorf("p99 %d (%v), want %d (%v)", got, got, w.p99, w.p99)
			}
			if got := r.Latency.Max(); got != w.max {
				t.Errorf("max %d (%v), want %d (%v)", got, got, w.max, w.max)
			}
			rows := r.Series.Rows()
			if len(rows) != len(w.intervalOffered) {
				t.Fatalf("%d intervals, want %d", len(rows), len(w.intervalOffered))
			}
			for i, row := range rows {
				if row.Offered != w.intervalOffered[i] {
					t.Errorf("interval %d offered %d, want %d", i, row.Offered, w.intervalOffered[i])
				}
				if wantStart := time.Duration(i) * sc.Interval; row.Start != wantStart {
					t.Errorf("interval %d starts at %v, want %v", i, row.Start, wantStart)
				}
			}
		})
	}
}

// TestLoadCampaignDeterministicReplay runs the lightest and the most
// contended scenario twice each and requires bit-identical results —
// counts, makespan, and every sketched percentile.
func TestLoadCampaignDeterministicReplay(t *testing.T) {
	for _, sc := range []Scenario{
		{Name: "steady", Kind: KindSteady, Requests: 3000, Rate: 1500, Services: 4, Seed: 42},
		{Name: "straggler", Kind: KindStraggler, Requests: 2000, Rate: 800, Services: 4, Seed: 42},
	} {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Offered != b.Offered || a.Completed != b.Completed || a.Failed != b.Failed {
				t.Errorf("counts differ: %d/%d/%d vs %d/%d/%d",
					a.Offered, a.Completed, a.Failed, b.Offered, b.Completed, b.Failed)
			}
			if a.Duration != b.Duration {
				t.Errorf("makespan differs: %v vs %v", a.Duration, b.Duration)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
				if qa, qb := a.Latency.Quantile(q), b.Latency.Quantile(q); qa != qb {
					t.Errorf("q%.2f differs: %v vs %v", q, qa, qb)
				}
			}
		})
	}
}

// TestLoadSketchWithinBoundOfOracle retains every completion latency and
// checks the streaming sketch against the exact sorted-sample oracle on
// every scenario shape, at the sketch's documented bound.
func TestLoadSketchWithinBoundOfOracle(t *testing.T) {
	for _, sc := range exactScenarios() {
		sc := sc
		sc.KeepSamples = true
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			r, err := Run(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(r.Samples)) != r.Completed {
				t.Fatalf("kept %d samples, want %d", len(r.Samples), r.Completed)
			}
			sorted := make([]time.Duration, len(r.Samples))
			copy(sorted, r.Samples)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			alpha := r.Latency.Alpha()
			for _, q := range []float64{0.50, 0.90, 0.99} {
				rank := int(math.Ceil(q * float64(len(sorted))))
				if rank < 1 {
					rank = 1
				}
				exact := sorted[rank-1]
				got := r.Latency.Quantile(q)
				tol := time.Duration(alpha*float64(exact)*(1+1e-9)) + 1
				if diff := (got - exact).Abs(); diff > tol {
					t.Errorf("q%.2f: sketch %v vs oracle %v (diff %v > tol %v)", q, got, exact, diff, tol)
				}
			}
			if r.Latency.Max() != sorted[len(sorted)-1] {
				t.Errorf("sketch max %v, oracle %v (max must be exact)", r.Latency.Max(), sorted[len(sorted)-1])
			}
			// The exact-summary oracle agrees on N and extremes too.
			st := metrics.Compute(r.Samples)
			if int64(st.N) != r.Completed || st.Max != r.Latency.Max() || st.Min != r.Latency.Min() {
				t.Errorf("Compute oracle disagrees: N=%d max=%v min=%v vs completed=%d max=%v min=%v",
					st.N, st.Max, st.Min, r.Completed, r.Latency.Max(), r.Latency.Min())
			}
		})
	}
}

// TestLoadTraceCampaign drives a hand-written trace through the harness:
// with explicit gaps the arrival stamps are fully pinned, so the interval
// bucketing is checkable by hand.
func TestLoadTraceCampaign(t *testing.T) {
	sc := Scenario{
		Name: "trace", Kind: KindTrace, Rate: 1, Services: 2, Seed: 9,
		Interval: 100 * time.Millisecond,
		// Arrivals at 10ms, 30ms, 60ms | 150ms | 250ms → intervals 3/1/1.
		Trace: []time.Duration{
			10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
			90 * time.Millisecond, 100 * time.Millisecond,
		},
	}
	r, err := Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Offered != 5 || r.Completed != 5 || r.Failed != 0 {
		t.Fatalf("counts offered=%d completed=%d failed=%d, want 5/5/0", r.Offered, r.Completed, r.Failed)
	}
	rows := r.Series.Rows()
	if len(rows) != 3 {
		t.Fatalf("%d intervals, want 3", len(rows))
	}
	for i, wantOff := range []int64{3, 1, 1} {
		if rows[i].Offered != wantOff {
			t.Errorf("interval %d offered %d, want %d", i, rows[i].Offered, wantOff)
		}
	}
	off, comp, fail := r.Series.Totals()
	if off != 5 || comp != 5 || fail != 0 {
		t.Errorf("series totals %d/%d/%d, want 5/5/0", off, comp, fail)
	}
}

package journal

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

func openTestWriter(t *testing.T) *Writer {
	t.Helper()
	w, err := Open(Config{
		Path:  filepath.Join(t.TempDir(), "session.journal"),
		Clock: simtime.NewReal(),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w
}

func mustAppend(t *testing.T, w *Writer, kind Kind, body any) {
	t.Helper()
	if err := w.Append(kind, body); err != nil {
		t.Fatalf("Append %s: %v", kind, err)
	}
}

// writeBasicJournal appends a session, one pilot, one task with a full
// happy-path transition history, and one service with a publication.
func writeBasicJournal(t *testing.T, w *Writer) {
	t.Helper()
	mustAppend(t, w, KindSession, SessionBody{UID: "session.0001", Seed: 42, Incarnation: 1})
	mustAppend(t, w, KindPilot, PilotBody{UID: "p1", Desc: spec.PilotDescription{UID: "p1", Platform: "r3", Nodes: 2}})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "pilot", UID: "p1", From: "NEW", To: "PMGR_LAUNCHING"})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "pilot", UID: "p1", From: "PMGR_LAUNCHING", To: "PMGR_ACTIVE"})
	mustAppend(t, w, KindTask, TaskBody{UID: "t1", Desc: spec.TaskDescription{
		UID: "t1", Cores: 1, Duration: rng.ConstDuration(3 * time.Second),
	}})
	mustAppend(t, w, KindBind, BindBody{Entity: "task", UID: "t1", Pilot: "p1"})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "NEW", To: "TMGR_SCHEDULING"})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "TMGR_SCHEDULING", To: "AGENT_STAGING_INPUT"})
	mustAppend(t, w, KindService, ServiceBody{UID: "s1", Desc: spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{UID: "s1", Cores: 1},
		Model:           "noop",
	}})
	mustAppend(t, w, KindBind, BindBody{Entity: "service", UID: "s1", Pilot: "p1"})
	mustAppend(t, w, KindEndpoint, EndpointBody{
		Op: OpPublish, UID: "s1",
		Endpoint:   proto.Endpoint{ServiceUID: "s1", Model: "noop", Address: "p1.s1", Incarnation: 1},
		Generation: 1,
	})
}

func TestRoundTrip(t *testing.T) {
	w := openTestWriter(t)
	writeBasicJournal(t, w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, stats, err := ReplayFile(w.Path())
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	if stats.Records != 11 || stats.Applied != 11 || stats.Skipped != 0 || stats.Invalid != 0 {
		t.Fatalf("stats = %+v, want 11 records all applied", stats)
	}
	if stats.TornTail {
		t.Fatal("clean journal reported a torn tail")
	}
	if snap.Session.UID != "session.0001" || snap.Session.Seed != 42 || snap.Session.Incarnation != 1 {
		t.Fatalf("session body = %+v", snap.Session)
	}
	if len(snap.Pilots) != 1 || snap.Pilots[0].State != states.PilotActive {
		t.Fatalf("pilots = %+v", snap.Pilots)
	}
	if len(snap.Tasks) != 1 || snap.Tasks[0].State != states.TaskStagingInput || snap.Tasks[0].Pilot != "p1" {
		t.Fatalf("tasks = %+v", snap.Tasks[0])
	}
	svc := snap.Services[0]
	if svc.Pilot != "p1" || svc.Generation != 1 || svc.Endpoint.Address != "p1.s1" || svc.Withdrawn || svc.Suspended {
		t.Fatalf("service = %+v", svc)
	}
	// The journaled duration distribution must survive the round trip.
	if got := snap.Tasks[0].Desc.Duration.Mean(); got != 3*time.Second {
		t.Fatalf("task duration mean = %v, want 3s", got)
	}
}

func TestReplayTruncatedTail(t *testing.T) {
	w := openTestWriter(t)
	writeBasicJournal(t, w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data := readFile(t, w.Path())

	// Cut the final record in half: replay must apply everything before it
	// and flag — not fail on — the torn tail.
	frames := frameOffsets(t, data)
	last := frames[len(frames)-1]
	cut := last + (len(data)-last)/2
	snap, stats, err := Replay(data[:cut])
	if err != nil {
		t.Fatalf("Replay with torn tail: %v", err)
	}
	if !stats.TornTail {
		t.Fatal("torn tail not reported")
	}
	if stats.Records != 10 || stats.Applied != 10 || stats.Invalid != 0 {
		t.Fatalf("stats = %+v, want 10 complete records applied", stats)
	}
	// ValidBytes marks exactly where the torn fragment begins, so a writer
	// can truncate to it and append safely.
	if stats.ValidBytes != int64(last) {
		t.Fatalf("ValidBytes = %d, want %d (start of torn record)", stats.ValidBytes, last)
	}
	if snap2, stats2, err := Replay(append(data[:stats.ValidBytes:stats.ValidBytes], data[last:]...)); err != nil ||
		stats2.TornTail || len(snap2.Services) != 1 {
		t.Fatalf("replay after truncate+re-append: snap=%+v stats=%+v err=%v", snap2, stats2, err)
	}
	// The endpoint publication was the torn record: the service exists but
	// has no publication.
	if svc := snap.Services[0]; svc.Generation != 0 || svc.Endpoint.Address != "" {
		t.Fatalf("torn publication leaked into snapshot: %+v", svc)
	}
}

func TestReplayFlippedChecksumByte(t *testing.T) {
	w := openTestWriter(t)
	writeBasicJournal(t, w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data := readFile(t, w.Path())

	// Flip one payload byte in a mid-journal record: replay must fail
	// (all-or-nothing) and count the record invalid.
	frames := frameOffsets(t, data)
	data[frames[3]+headerSize] ^= 0xff
	snap, stats, err := Replay(data)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if snap != nil {
		t.Fatal("corrupt journal produced a snapshot")
	}
	if stats.Invalid != 1 {
		t.Fatalf("stats.Invalid = %d, want 1", stats.Invalid)
	}
	if stats.Records != 3 {
		t.Fatalf("stats.Records = %d, want 3 records before the corrupt one", stats.Records)
	}
}

func TestReplayDuplicateAndOutOfOrderTransitions(t *testing.T) {
	w := openTestWriter(t)
	mustAppend(t, w, KindSession, SessionBody{UID: "s", Incarnation: 1})
	mustAppend(t, w, KindTask, TaskBody{UID: "t1", Desc: spec.TaskDescription{UID: "t1", Cores: 1}})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "NEW", To: "TMGR_SCHEDULING"})
	// Exact duplicate: to == current.
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "NEW", To: "TMGR_SCHEDULING"})
	// Out of order: from does not match current state.
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "AGENT_SCHEDULING", To: "AGENT_EXECUTING"})
	// Unknown UID.
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "ghost", From: "NEW", To: "TMGR_SCHEDULING"})
	// Duplicate description.
	mustAppend(t, w, KindTask, TaskBody{UID: "t1", Desc: spec.TaskDescription{UID: "t1", Cores: 1}})
	// Illegal edge from the current state.
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "TMGR_SCHEDULING", To: "DONE"})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, stats, err := ReplayFile(w.Path())
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	if stats.Records != 8 || stats.Applied != 3 || stats.Skipped != 5 {
		t.Fatalf("stats = %+v, want 8 records / 3 applied / 5 skipped", stats)
	}
	want := map[string]int{
		"duplicate-transition":    1,
		"out-of-order-transition": 1,
		"transition-unknown-uid":  1,
		"duplicate-desc":          1,
		"illegal-transition":      1,
	}
	for reason, n := range want {
		if stats.SkipReasons[reason] != n {
			t.Fatalf("SkipReasons[%s] = %d, want %d (all: %v)", reason, stats.SkipReasons[reason], n, stats.SkipReasons)
		}
	}
	if snap.Tasks[0].State != states.TaskTmgrScheduling {
		t.Fatalf("task state = %s after skipped records, want TMGR_SCHEDULING", snap.Tasks[0].State)
	}
}

func TestReplayMachineRestart(t *testing.T) {
	// A re-placed service bootstraps a fresh machine under the same UID:
	// after a final state, a transition from the model's initial state
	// re-enters the model.
	w := openTestWriter(t)
	mustAppend(t, w, KindService, ServiceBody{UID: "s1", Desc: spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{UID: "s1", Cores: 1}, Model: "noop",
	}})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "service", UID: "s1", From: "NEW", To: "SMGR_SCHEDULING"})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "service", UID: "s1", From: "SMGR_SCHEDULING", To: "FAILED"})
	mustAppend(t, w, KindTransition, TransitionBody{Entity: "service", UID: "s1", From: "NEW", To: "SMGR_SCHEDULING"})
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, stats, err := ReplayFile(w.Path())
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	if stats.Skipped != 0 {
		t.Fatalf("restart transition skipped: %+v", stats)
	}
	if snap.Services[0].State != states.ServiceSmgrScheduling {
		t.Fatalf("service state = %s, want SMGR_SCHEDULING after restart", snap.Services[0].State)
	}
}

func TestWriterCrashModes(t *testing.T) {
	t.Run("lost", func(t *testing.T) {
		w := openTestWriter(t)
		mustAppend(t, w, KindSession, SessionBody{UID: "s", Incarnation: 1})
		fired := false
		w.OnCrash(func() { fired = true })
		w.SetCrashHook(func(rec Record) CrashMode {
			if rec.Kind == KindTask {
				return CrashLost
			}
			return NoCrash
		})
		if err := w.Append(KindTask, TaskBody{UID: "t1"}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashing append err = %v, want ErrCrashed", err)
		}
		if !fired {
			t.Fatal("OnCrash did not fire")
		}
		if err := w.Append(KindTask, TaskBody{UID: "t2"}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("post-crash append err = %v, want ErrCrashed", err)
		}
		_, stats, err := ReplayFile(w.Path())
		if err != nil {
			t.Fatalf("ReplayFile: %v", err)
		}
		if stats.Records != 1 || stats.TornTail {
			t.Fatalf("stats = %+v, want exactly the pre-crash record", stats)
		}
	})

	t.Run("torn", func(t *testing.T) {
		w := openTestWriter(t)
		mustAppend(t, w, KindSession, SessionBody{UID: "s", Incarnation: 1})
		w.SetCrashHook(func(rec Record) CrashMode {
			if rec.Kind == KindTask {
				return CrashTorn
			}
			return NoCrash
		})
		if err := w.Append(KindTask, TaskBody{UID: "t1"}); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashing append err = %v, want ErrCrashed", err)
		}
		_, stats, err := ReplayFile(w.Path())
		if err != nil {
			t.Fatalf("ReplayFile with torn tail: %v", err)
		}
		if stats.Records != 1 || !stats.TornTail {
			t.Fatalf("stats = %+v, want 1 record plus a torn tail", stats)
		}
	})
}

func TestWriterClosedAndCrashIdempotent(t *testing.T) {
	w := openTestWriter(t)
	mustAppend(t, w, KindSession, SessionBody{UID: "s"})
	w.Crash()
	w.Crash() // idempotent
	if !w.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after Crash: %v", err)
	}

	w2 := openTestWriter(t)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w2.Append(KindSession, SessionBody{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after Close err = %v, want ErrClosed", err)
	}
}

func TestFlusherSyncsOnClock(t *testing.T) {
	clock := simtime.NewVirtual(time.Unix(0, 0))
	w, err := Open(Config{
		Path:       filepath.Join(t.TempDir(), "j"),
		Clock:      clock,
		FlushEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, w, KindSession, SessionBody{UID: "s"})
	// Advance repeatedly: the flusher's ticker registers asynchronously,
	// so a single advance could land before the ticker exists.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, syncs := w.Stats(); syncs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never synced after clock advance")
		}
		clock.Advance(100 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestMaxSeqSuffix(t *testing.T) {
	uids := []string{"task.0001", "task.0007", "task.0003", "service.0002", "task.00x1"}
	if got := MaxSeqSuffix(uids, "task."); got != 7 {
		t.Fatalf("MaxSeqSuffix = %d, want 7", got)
	}
	if got := MaxSeqSuffix(uids, "pilot."); got != 0 {
		t.Fatalf("MaxSeqSuffix no match = %d, want 0", got)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Fatal("empty buffer decoded")
	}
	// Oversized length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	if _, _, err := DecodeRecord(buf.Bytes()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized prefix err = %v, want ErrTooLarge", err)
	}
}

// frameOffsets returns the byte offset of every framed record in data.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off < len(data) {
		_, n, err := DecodeRecord(data[off:])
		if err != nil {
			t.Fatalf("frameOffsets: decode at %d: %v", off, err)
		}
		offs = append(offs, off)
		off += n
	}
	return offs
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

// sanity check that record bodies marshal cleanly (guards against adding
// unmarshalable fields to the body structs).
func TestBodiesMarshal(t *testing.T) {
	for _, body := range []any{
		SessionBody{}, PilotBody{}, TaskBody{}, ServiceBody{},
		BindBody{}, TransitionBody{}, EndpointBody{},
	} {
		if _, err := json.Marshal(body); err != nil {
			t.Fatalf("marshal %T: %v", body, err)
		}
	}
}

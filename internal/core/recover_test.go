package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/pilot"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// newJournaledSession builds a fast journaled session for recovery tests
// and returns it with its journal path. No Cleanup: the tests themselves
// decide whether the session dies by Abandon or Close.
func newJournaledSession(t *testing.T, seed uint64) (*Session, string) {
	t.Helper()
	jp := filepath.Join(t.TempDir(), "session.wal")
	s, err := NewSession(SessionConfig{
		Seed:        seed,
		Clock:       simtime.NewScaled(100000, DefaultOrigin),
		FastBoot:    true,
		JournalPath: jp,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, jp
}

// submitAttachedPilot launches a half-platform delta pilot (so two fit)
// and attaches it to both managers.
func submitAttachedPilot(t *testing.T, s *Session) *pilot.Pilot {
	t.Helper()
	p, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 128, GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.TaskManager().AddPilot(p)
	s.ServiceManager().AddPilot(p)
	return p
}

func TestRecoverReattachesInFlightWork(t *testing.T) {
	s, jp := newJournaledSession(t, 7)
	p1 := submitAttachedPilot(t, s)
	p2 := submitAttachedPilot(t, s)

	svc, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	preGen := s.EndpointRegistry().Generation(svc.UID())

	// One batch that finishes before the crash, one that is still running
	// when the client dies.
	short, err := s.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "short", Cores: 1, Duration: rng.ConstDuration(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TaskManager().Wait(ctx, short...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TaskManager().Submit(context.Background(),
		spec.TaskDescription{Name: "long", Cores: 1, Duration: rng.ConstDuration(time.Hour)},
		spec.TaskDescription{Name: "long", Cores: 1, Duration: rng.ConstDuration(time.Hour)},
	); err != nil {
		t.Fatal(err)
	}

	s.Abandon()

	s2, rep, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.UID() != s.UID() {
		t.Fatalf("recovered UID %s, want %s", s2.UID(), s.UID())
	}
	if rep.Incarnation != 2 || s2.Incarnation() != 2 {
		t.Fatalf("incarnation = %d/%d, want 2", rep.Incarnation, s2.Incarnation())
	}
	if len(rep.PilotsAlive) != 2 || len(rep.PilotsLost) != 0 {
		t.Fatalf("pilots alive/lost = %v/%v, want 2/0", rep.PilotsAlive, rep.PilotsLost)
	}
	if len(rep.TasksSettled) != 1 || rep.TasksSettled[0] != short[0].UID() {
		t.Fatalf("TasksSettled = %v, want [%s]", rep.TasksSettled, short[0].UID())
	}
	if len(rep.TasksReattached) != 2 {
		t.Fatalf("TasksReattached = %v, want both long tasks", rep.TasksReattached)
	}
	if len(rep.ServicesReattached) != 1 || rep.ServicesReattached[0] != svc.UID() {
		t.Fatalf("ServicesReattached = %v, want [%s]", rep.ServicesReattached, svc.UID())
	}

	// The settled task is DONE with its journaled identity.
	rshort, ok := findTask(s2, short[0].UID())
	if !ok || rshort.State() != states.TaskDone || rshort.Err() != nil {
		t.Fatalf("short task not recovered as done: %v", rshort)
	}
	// The re-published endpoint ranks strictly newer than any pre-crash
	// copy and resolves live.
	ep, gen, ok := s2.EndpointRegistry().Resolve(svc.UID())
	if !ok || gen <= preGen {
		t.Fatalf("endpoint gen = %d (live=%v), want > %d", gen, ok, preGen)
	}
	if ep.Incarnation != 2 {
		t.Fatalf("endpoint incarnation = %d, want 2", ep.Incarnation)
	}
	// The reattached tasks run to completion on the surviving pilots.
	if err := s2.TaskManager().Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, uid := range rep.TasksReattached {
		rt, ok := findTask(s2, uid)
		if !ok || rt.State() != states.TaskDone {
			t.Fatalf("task %s did not finish after recovery", uid)
		}
	}
	_ = p1
	_ = p2
}

func findTask(s *Session, uid string) (*Task, bool) {
	for _, t := range s.TaskManager().Tasks() {
		if t.UID() == uid {
			return t, true
		}
	}
	return nil, false
}

func TestRecoverReroutesWorkFromDeadPilot(t *testing.T) {
	s, jp := newJournaledSession(t, 11)
	p1 := submitAttachedPilot(t, s)
	p2 := submitAttachedPilot(t, s)

	// Round-robin places the first submission of each manager on p1.
	svc, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if svc.Pilot() != p1.UID() {
		t.Fatalf("service placed on %s, want %s", svc.Pilot(), p1.UID())
	}
	long, err := s.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "long", Cores: 1, Duration: rng.ConstDuration(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if long[0].Pilot() != p1.UID() {
		t.Fatalf("task placed on %s, want %s", long[0].Pilot(), p1.UID())
	}

	// The client dies; then its pilot dies while the client is down.
	s.Abandon()
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rep.PilotsAlive) != 1 || rep.PilotsAlive[0] != p2.UID() {
		t.Fatalf("PilotsAlive = %v, want [%s]", rep.PilotsAlive, p2.UID())
	}
	if len(rep.PilotsLost) != 1 || rep.PilotsLost[0] != p1.UID() {
		t.Fatalf("PilotsLost = %v, want [%s]", rep.PilotsLost, p1.UID())
	}
	if len(rep.TasksRerouted) != 1 || rep.TasksRerouted[0] != long[0].UID() {
		t.Fatalf("TasksRerouted = %v, want [%s]", rep.TasksRerouted, long[0].UID())
	}
	if len(rep.ServicesReplaced) != 1 || rep.ServicesReplaced[0] != svc.UID() {
		t.Fatalf("ServicesReplaced = %v, want [%s]", rep.ServicesReplaced, svc.UID())
	}

	// The re-placed service bootstraps on the survivor and re-publishes.
	rsvc, ok := s2.ServiceManager().Get(svc.UID())
	if !ok {
		t.Fatal("re-placed service not managed")
	}
	if err := rsvc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if rsvc.Pilot() != p2.UID() {
		t.Fatalf("re-placed on %s, want %s", rsvc.Pilot(), p2.UID())
	}
	if _, gen, ok := s2.EndpointRegistry().Resolve(svc.UID()); !ok || gen < 2 {
		t.Fatalf("re-publication gen = %d (live=%v), want >= 2", gen, ok)
	}
	// The re-routed task finishes on the survivor.
	if err := s2.TaskManager().Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rt, ok := findTask(s2, long[0].UID())
	if !ok || rt.State() != states.TaskDone || rt.Pilot() != p2.UID() {
		t.Fatalf("re-routed task: state %v on %v, want DONE on %s", rt.State(), rt.Pilot(), p2.UID())
	}
}

func TestRecoverSettlesPinnedWorkOnDeadPilot(t *testing.T) {
	s, jp := newJournaledSession(t, 13)
	p1 := submitAttachedPilot(t, s)
	p2 := submitAttachedPilot(t, s)

	pinned, err := s.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "pinned", Cores: 1, Duration: rng.ConstDuration(time.Hour), Pilot: p1.UID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Abandon()
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(rep.TasksSettled) != 1 || rep.TasksSettled[0] != pinned[0].UID() {
		t.Fatalf("TasksSettled = %v, want [%s]", rep.TasksSettled, pinned[0].UID())
	}
	rt, ok := findTask(s2, pinned[0].UID())
	if !ok {
		t.Fatal("pinned task not recovered")
	}
	<-rt.Done()
	if !errors.Is(rt.Err(), pilot.ErrPilotStopped) {
		t.Fatalf("pinned task err = %v, want ErrPilotStopped", rt.Err())
	}
	_ = p2
}

func TestRecoverFencesStaleIncarnation(t *testing.T) {
	s, jp := newJournaledSession(t, 17)
	submitAttachedPilot(t, s)
	svc, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	staleEp := svc.Endpoint() // incarnation-1 stamped
	s.Abandon()

	s2, _, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.EndpointRegistry().Fence(); got != 2 {
		t.Fatalf("fence = %d, want 2", got)
	}
	// A zombie publisher from the first incarnation must be rejected...
	if _, err := s2.EndpointRegistry().Publish(staleEp); !errors.Is(err, service.ErrStaleIncarnation) {
		t.Fatalf("stale publish err = %v, want ErrStaleIncarnation", err)
	}
	// ...while the current incarnation publishes fine.
	fresh := staleEp
	fresh.Incarnation = 2
	if _, err := s2.EndpointRegistry().Publish(fresh); err != nil {
		t.Fatalf("current-incarnation publish: %v", err)
	}
}

func TestRecoverDedupServesRedeliveredRequestOnce(t *testing.T) {
	s, jp := newJournaledSession(t, 19)
	submitAttachedPilot(t, s)
	svc, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	s2, _, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rsvc, _ := s2.ServiceManager().Get(svc.UID())
	if err := rsvc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	ep, _, ok := s2.EndpointRegistry().Resolve(svc.UID())
	if !ok {
		t.Fatal("service not resolvable after recovery")
	}

	// A client that lost its reply redelivers the same request UID after
	// the crash; the service must execute it exactly once.
	conn, err := s2.Network().Dial("client.0", ep.Address)
	if err != nil {
		t.Fatal(err)
	}
	req := proto.InferenceRequest{
		RequestUID: "client.0.req.000001",
		ClientUID:  "client.0",
		Model:      ep.Model,
		Prompt:     "hello",
		MaxTokens:  16,
		SentAt:     s2.Clock().Now(),
	}
	send := func() proto.InferenceReply {
		env, err := proto.NewEnvelope(proto.KindRequest, 1, "client.0", ep.ServiceUID, s2.Clock().Now(), req)
		if err != nil {
			t.Fatal(err)
		}
		out, err := conn.Request(ctx, env)
		if err != nil {
			t.Fatal(err)
		}
		var reply proto.InferenceReply
		if err := out.Decode(proto.KindReply, &reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}
	first := send()
	second := send()
	inst := rsvc.Instance()
	if got := inst.Processed(); got != 1 {
		t.Fatalf("processed = %d, want exactly 1", got)
	}
	if got := inst.Deduped(); got != 1 {
		t.Fatalf("deduped = %d, want 1", got)
	}
	if first.Timing != second.Timing {
		t.Fatalf("redelivered reply differs: %+v vs %+v", first.Timing, second.Timing)
	}
}

func TestRecoverTwiceBumpsIncarnation(t *testing.T) {
	s, jp := newJournaledSession(t, 23)
	submitAttachedPilot(t, s)
	s.Abandon()

	s2, rep2, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Incarnation != 2 {
		t.Fatalf("first recovery incarnation = %d, want 2", rep2.Incarnation)
	}
	s2.Abandon()

	s3, rep3, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rep3.Incarnation != 3 || s3.EndpointRegistry().Fence() != 3 {
		t.Fatalf("second recovery incarnation/fence = %d/%d, want 3/3",
			rep3.Incarnation, s3.EndpointRegistry().Fence())
	}
	if s3.UID() != s.UID() {
		t.Fatalf("identity drifted: %s != %s", s3.UID(), s.UID())
	}
}

// TestRecoverTornCrashTwice pins the torn-tail excision: the first
// recovery after a mid-write crash must truncate the half-written record
// before appending incarnation 2's records, or the fragment's length
// prefix swallows them as its payload on the next replay and every later
// recovery fails with ErrChecksum — permanently losing the session.
func TestRecoverTornCrashTwice(t *testing.T) {
	s, jp := newJournaledSession(t, 29)
	submitAttachedPilot(t, s)

	crashed := make(chan struct{})
	jw := s.Journal()
	jw.OnCrash(func() {
		s.Abandon()
		close(crashed)
	})
	var armed atomic.Bool
	jw.SetCrashHook(func(rec journal.Record) journal.CrashMode {
		if armed.Load() && rec.Kind == journal.KindTransition {
			return journal.CrashTorn
		}
		return journal.NoCrash
	})
	armed.Store(true)
	// The trigger task's first transition dies half-written.
	if _, err := s.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "trigger", Cores: 1, Duration: rng.ConstDuration(time.Hour),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-crashed:
	case <-time.After(30 * time.Second):
		t.Fatal("torn crash never fired")
	}

	s2, rep2, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Stats.TornTail {
		t.Fatal("first recovery saw no torn tail")
	}
	// Append incarnation-2 records across the formerly-torn boundary, then
	// die again.
	post, err := s2.TaskManager().Submit(context.Background(), spec.TaskDescription{
		Name: "post", Cores: 1, Duration: rng.ConstDuration(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.Abandon()

	s3, rep3, err := Recover(jp, RecoverConfig{})
	if err != nil {
		t.Fatalf("second recovery after torn crash: %v", err)
	}
	defer s3.Close()
	if rep3.Stats.TornTail {
		t.Fatal("second recovery reported a torn tail after a clean Abandon")
	}
	if rep3.Incarnation != 3 || s3.UID() != s.UID() {
		t.Fatalf("second recovery incarnation/UID = %d/%s, want 3/%s",
			rep3.Incarnation, s3.UID(), s.UID())
	}
	// The incarnation-2 submission survived the boundary.
	if _, ok := findTask(s3, post[0].UID()); !ok {
		t.Fatal("incarnation-2 task lost across the second recovery")
	}
}

func TestRecoverErrorsWithoutJournal(t *testing.T) {
	if _, _, err := Recover(filepath.Join(t.TempDir(), "absent.wal"), RecoverConfig{}); err == nil {
		t.Fatal("recovered from a nonexistent journal")
	}
}

// TestSessionCloseSettlesReplacementRace pins the Close-vs-watcher race:
// a service watcher that observes its pilot dying during session close
// must settle the handle with ErrSessionClosed instead of re-placing the
// service onto a pilot the session is about to tear down.
func TestSessionCloseSettlesReplacementRace(t *testing.T) {
	s := newSession(t, 100000)
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 128, GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 128, GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.ServiceManager().AddPilot(p1)
	s.ServiceManager().AddPilot(p2)
	svc, err := s.ServiceManager().Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "llm", GPUs: 1},
		Model:           "llama-8b",
		StartTimeout:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	s.Close()
	select {
	case <-svc.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("service handle never settled after Close")
	}
	if err := svc.Err(); err != nil && !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("service settled with %v, want nil or ErrSessionClosed", err)
	}
	if svc.Replacements() != 0 {
		t.Fatalf("service was re-placed %d times during Close", svc.Replacements())
	}
}

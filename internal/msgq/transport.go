package msgq

import (
	"fmt"
	"strings"
)

// Transport names selectable via Network.SetTransport / Network.BindVia
// (and, above this package, core.SessionConfig.Transport and
// pilot.Config.Transport).
const (
	// TransportInproc is the default in-process transport with modelled
	// link latency on the session clock.
	TransportInproc = "inproc"
	// TransportTCP binds endpoints on real loopback TCP sockets speaking
	// binary proto frames. Latency is whatever the kernel provides — the
	// session's link model does not apply — which is the point: it is the
	// transport for genuinely multi-process sessions.
	TransportTCP = "tcp"
)

// tcpScheme prefixes dialable TCP endpoint addresses ("tcp://host:port").
// Server.Addr of a TCP bind returns this form, so an address published in
// an endpoint registry is dialable from any process.
const tcpScheme = "tcp://"

// ValidTransport reports whether name is a known transport selector. The
// empty string is valid and means "the network's default".
func ValidTransport(name string) bool {
	switch name {
	case "", TransportInproc, TransportTCP:
		return true
	}
	return false
}

// SetTransport selects the default transport used by Bind-without-opinion
// callers (BindVia with an empty transport name). The zero value is
// TransportInproc. Unknown names are rejected.
func (n *Network) SetTransport(name string) error {
	if !ValidTransport(name) {
		return fmt.Errorf("msgq: unknown transport %q", name)
	}
	n.mu.Lock()
	n.transport = name
	n.mu.Unlock()
	return nil
}

// BindVia registers a REQ/REP server at the logical address addr on the
// named transport (empty = the network default). On TransportInproc this
// is exactly Bind. On TransportTCP the server listens on a real loopback
// socket; its Addr() returns the dialable "tcp://host:port" form, and the
// logical address is registered so same-process Dial(addr) still works.
func (n *Network) BindVia(transport, addr string, h Handler) (Server, error) {
	if transport == "" {
		n.mu.Lock()
		transport = n.transport
		n.mu.Unlock()
	}
	switch transport {
	case "", TransportInproc:
		return n.Bind(addr, h)
	case TransportTCP:
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		srv, err := ListenTCPOpts("127.0.0.1:0", h, TCPServerOptions{})
		if err != nil {
			return nil, err
		}
		b := &tcpBind{n: n, addr: addr, srv: srv}
		if _, loaded := n.tcpBinds.LoadOrStore(addr, b); loaded {
			_ = srv.Close()
			return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("msgq: unknown transport %q", transport)
	}
}

// Dial connects a client at address from to the server bound at to. The
// target transport is inferred from the address: a "tcp://host:port"
// address dials the socket directly (any process), a logical address bound
// locally over TCP dials its socket, and anything else takes the in-process
// path with its dial-time link resolution.
func (n *Network) Dial(from, to string) (Client, error) {
	if real, ok := strings.CutPrefix(to, tcpScheme); ok {
		return DialTCP(real)
	}
	if v, ok := n.tcpBinds.Load(to); ok {
		return DialTCP(v.(*tcpBind).srv.Addr())
	}
	return n.dialInproc(from, to)
}

// tcpBind pairs a logical network address with its TCP listener, so the
// endpoint is reachable both by logical name (same process) and by socket
// address (any process).
type tcpBind struct {
	n    *Network
	addr string // logical address as passed to BindVia
	srv  *TCPServer
}

// Addr implements Server, returning the dialable socket form.
func (b *tcpBind) Addr() string { return tcpScheme + b.srv.Addr() }

// Close implements Server.
func (b *tcpBind) Close() error {
	b.n.tcpBinds.CompareAndDelete(b.addr, b)
	return b.srv.Close()
}

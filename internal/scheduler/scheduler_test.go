package scheduler

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/platform"
)

// collector gathers placements in arrival order.
type collector struct {
	mu     sync.Mutex
	placed []Placement
	notify chan struct{}
}

func newCollector() *collector {
	return &collector{notify: make(chan struct{}, 1024)}
}

func (c *collector) fn(p Placement) {
	c.mu.Lock()
	c.placed = append(c.placed, p)
	c.mu.Unlock()
	c.notify <- struct{}{}
}

func (c *collector) waitN(t *testing.T, n int) []Placement {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.placed) >= n {
			out := append([]Placement{}, c.placed...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-deadline:
			c.mu.Lock()
			got := len(c.placed)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d placements, have %d", n, got)
		}
	}
}

func nodes(n, cores, gpus int) []*platform.Node {
	p := platform.New("test", n, platform.NodeSpec{Cores: cores, GPUs: gpus, MemGB: 256})
	return p.Nodes()
}

func TestSubmitPlacesImmediately(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 8, 2), c.fn)
	defer s.Close()
	if err := s.Submit(Request{UID: "t1", Cores: 4}); err != nil {
		t.Fatal(err)
	}
	got := c.waitN(t, 1)
	if got[0].Req.UID != "t1" || len(got[0].Alloc.Cores) != 4 {
		t.Fatalf("placement = %+v", got[0])
	}
}

func TestUnsatisfiableRejected(t *testing.T) {
	c := newCollector()
	s := New(nodes(2, 8, 2), c.fn)
	defer s.Close()
	err := s.Submit(Request{UID: "huge", Cores: 9})
	var uns ErrUnsatisfiable
	if !errors.As(err, &uns) {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	if uns.Req.UID != "huge" {
		t.Fatalf("ErrUnsatisfiable carries %q", uns.Req.UID)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 8, 2), c.fn)
	s.Close()
	s.Close() // idempotent
	if err := s.Submit(Request{UID: "t", Cores: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn)
	defer s.Close()
	_ = s.Submit(Request{UID: "a", Cores: 4})
	_ = s.Submit(Request{UID: "b", Cores: 4})
	placed := c.waitN(t, 1)
	if placed[0].Req.UID != "a" {
		t.Fatalf("first placement = %s", placed[0].Req.UID)
	}
	if w := s.Waiting(); w != 1 {
		t.Fatalf("Waiting = %d, want 1", w)
	}
	// releasing a's allocation lets b in
	s.Release(placed[0].Alloc)
	placed = c.waitN(t, 2)
	if placed[1].Req.UID != "b" {
		t.Fatalf("second placement = %s", placed[1].Req.UID)
	}
	if s.Scheduled() != 2 {
		t.Fatalf("Scheduled = %d", s.Scheduled())
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Fill the node, then queue a task and a service; on release the
	// service (higher priority) must be placed first even though the task
	// was submitted earlier.
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn)
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 4})
	first := c.waitN(t, 1)[0]
	_ = s.Submit(Request{UID: "task", Cores: 4, Priority: 0})
	_ = s.Submit(Request{UID: "service", Cores: 4, Priority: 100})
	s.Release(first.Alloc)
	second := c.waitN(t, 2)[1]
	if second.Req.UID != "service" {
		t.Fatalf("placed %q after release, want the higher-priority service", second.Req.UID)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	c := newCollector()
	s := New(nodes(1, 2, 0), c.fn)
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 2})
	first := c.waitN(t, 1)[0]
	for _, uid := range []string{"p1", "p2", "p3"} {
		_ = s.Submit(Request{UID: uid, Cores: 2, Priority: 5})
	}
	s.Release(first.Alloc)
	second := c.waitN(t, 2)[1]
	if second.Req.UID != "p1" {
		t.Fatalf("FIFO violated: %q placed first", second.Req.UID)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// Strict priority: a large high-priority head must NOT be bypassed by a
	// small low-priority request (no backfill) — services must not starve.
	c := newCollector()
	s := New(nodes(1, 4, 0), c.fn)
	defer s.Close()
	_ = s.Submit(Request{UID: "filler", Cores: 3})
	c.waitN(t, 1)
	_ = s.Submit(Request{UID: "big-service", Cores: 4, Priority: 100})
	_ = s.Submit(Request{UID: "small-task", Cores: 1, Priority: 0})
	time.Sleep(50 * time.Millisecond)
	c.mu.Lock()
	n := len(c.placed)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d placements, want 1: small task must not jump the blocked service", n)
	}
}

func TestGPUPlacement(t *testing.T) {
	c := newCollector()
	s := New(nodes(2, 8, 4), c.fn)
	defer s.Close()
	for i := 0; i < 8; i++ {
		_ = s.Submit(Request{UID: "svc", GPUs: 1})
	}
	placed := c.waitN(t, 8)
	perNode := map[string]int{}
	for _, p := range placed {
		perNode[p.Alloc.Node().Name()] += len(p.Alloc.GPUs)
	}
	for node, gpus := range perNode {
		if gpus > 4 {
			t.Fatalf("node %s got %d GPUs, capacity 4", node, gpus)
		}
	}
	if s.Waiting() != 0 {
		t.Fatalf("Waiting = %d after full placement", s.Waiting())
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	c := newCollector()
	s := New(nodes(4, 64, 8), c.fn)
	defer s.Close()
	var wg sync.WaitGroup
	const n = 128
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Submit(Request{UID: "t", Cores: 2}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	placed := c.waitN(t, n)
	if len(placed) != n {
		t.Fatalf("placed %d, want %d", len(placed), n)
	}
	// conservation: released everything → all cores free again
	for _, p := range placed {
		s.Release(p.Alloc)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: after any burst of submissions and full release, every node
	// returns to idle, and no placement ever exceeded node capacity.
	f := func(sizes []uint8) bool {
		c := newCollector()
		s := New(nodes(2, 16, 4), c.fn)
		defer s.Close()
		expected := 0
		for _, b := range sizes {
			req := Request{UID: "t", Cores: int(b%16) + 1, GPUs: int(b % 5)}
			if err := s.Submit(req); err == nil {
				expected++
			}
		}
		// release as they arrive until all placed
		released := 0
		deadline := time.After(5 * time.Second)
		for released < expected {
			c.mu.Lock()
			avail := len(c.placed)
			c.mu.Unlock()
			if released < avail {
				c.mu.Lock()
				p := c.placed[released]
				c.mu.Unlock()
				if len(p.Alloc.Cores) > 16 || len(p.Alloc.GPUs) > 4 {
					return false
				}
				s.Release(p.Alloc)
				released++
				continue
			}
			select {
			case <-c.notify:
			case <-deadline:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package core

// Tests for warm-standby replicas: pre-bootstrapped spare instances held
// suspended in the registry, promoted on pilot failure with a single
// generation-bump publish instead of a cold re-bootstrap.

import (
	"context"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/spec"
)

// waitStandbys polls until the handle holds n promotable standbys.
func waitStandbys(t *testing.T, h *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for h.Standbys() != n {
		if time.Now().After(deadline) {
			t.Fatalf("standbys = %d, want %d", h.Standbys(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitPromotions polls until the handle reports n promotions.
func waitPromotions(t *testing.T, h *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for h.Promotions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("promotions = %d, want %d", h.Promotions(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWarmStandbyPromotionSingleGenerationBump is the tentpole pin for
// failover cost: with one warm standby held on the other pilot, killing
// the hosting pilot promotes the standby with exactly one registry
// generation bump — no re-bootstrap, Replacements stays 0 — and the
// promoted instance serves immediately.
func TestWarmStandbyPromotionSingleGenerationBump(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)

	d := noopService("spared")
	d.WarmStandbys = 1
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if h.Pilot() != p1.UID() {
		t.Fatalf("base instance on %s, want first pilot %s", h.Pilot(), p1.UID())
	}
	waitStandbys(t, h, 1)
	// distinct-pilot placement: the spare must not share the base's pilot
	h.mu.Lock()
	sbPilot := h.standbys[0].p.UID()
	h.mu.Unlock()
	if sbPilot != p2.UID() {
		t.Fatalf("standby on %s, want the other pilot %s", sbPilot, p2.UID())
	}

	reg := s.EndpointRegistry()
	epBefore, genBefore, ok := reg.Resolve(h.UID())
	if !ok {
		t.Fatal("no live endpoint before failover")
	}

	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	waitPromotions(t, h, 1)
	epAfter, genAfter, err := reg.AwaitNewer(ctx, h.UID(), genBefore)
	if err != nil {
		t.Fatal(err)
	}
	// one generation bump, not the suspend + fresh-bootstrap publish pair
	// a cold re-placement would eventually produce
	if genAfter != genBefore+1 {
		t.Fatalf("failover cost %d generations, want exactly 1", genAfter-genBefore)
	}
	if epAfter.Address == epBefore.Address {
		t.Fatalf("promotion kept the dead address %s", epAfter.Address)
	}
	if epAfter.ServiceUID != h.UID() {
		t.Fatalf("promotion published UID %s, want logical %s", epAfter.ServiceUID, h.UID())
	}
	if h.Replacements() != 0 {
		t.Fatalf("replacements = %d after warm promotion, want 0 (no re-bootstrap)", h.Replacements())
	}
	if h.Pilot() != p2.UID() {
		t.Fatalf("promoted service on %s, want standby pilot %s", h.Pilot(), p2.UID())
	}

	// the promoted instance serves (the reply carries its pilot-level
	// standby UID — addressing stays on the logical UID throughout)
	cl, err := s.DialService(platform.Addr("delta", "", "client.0001"), h.UID())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Infer(ctx, "post-promotion", 0); err != nil {
		t.Fatalf("inference after promotion: %v", err)
	}

	// the drained pool refills in the background (p1 is gone, so the
	// refilled spare lands on the survivor — a same-pilot spare beats none)
	waitStandbys(t, h, 1)

	// Terminate addresses the promoted pilot-level instance and withdraws
	// the logical UID
	if err := sm.Terminate(h.UID(), false); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := reg.Resolve(h.UID()); ok {
		t.Fatal("logical endpoint still resolvable after Terminate")
	}
	select {
	case <-h.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("handle never settled after Terminate")
	}
}

// TestWarmStandbyExhaustedFallsBackToColdReplace: with the standby pool
// empty (WarmStandbys spares could never be placed — the session has a
// single pilot until after the kill), failover must degrade to the cold
// re-bootstrap path, not wedge.
func TestWarmStandbyExhaustedFallsBackToColdReplace(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)

	d := noopService("unspared") // no WarmStandbys: the pool is empty
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	if err := p1.Shutdown(); err != nil {
		t.Fatal(err)
	}
	waitReplacements(t, h, 1)
	if h.Promotions() != 0 {
		t.Fatalf("promotions = %d with no standby pool, want 0", h.Promotions())
	}
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStandbyPromotionVsConcurrentClose races a promotion-triggering
// pilot kill against session Close: whichever wins, the handle must
// settle (no wedge, no panic) and the session must shut down cleanly.
// Run under -race, the interleaving coverage is the point.
func TestWarmStandbyPromotionVsConcurrentClose(t *testing.T) {
	s := newSession(t, 100000)
	sm := s.ServiceManager()
	p1, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	sm.AddPilot(p1)
	sm.AddPilot(p2)

	d := noopService("racy")
	d.WarmStandbys = 1
	h, err := sm.Submit(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		t.Fatal(err)
	}
	waitStandbys(t, h, 1)

	done := make(chan struct{})
	go func() {
		_ = p1.Shutdown()
		close(done)
	}()
	s.Close()
	<-done
	select {
	case <-h.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("handle never settled across kill/close race")
	}
}

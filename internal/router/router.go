// Package router implements the session-level task→pilot binding seam —
// the client-side half of the pilot abstraction's late-binding promise:
// tasks bind to concrete resources only when capacity is actually
// available, not at submission time. It mirrors the agent scheduler's
// Policy design one layer up: where scheduler.Policy decides which node
// inside one pilot a request lands on, a Router decides which pilot a
// task is dispatched to in the first place.
//
// Three routers ship built in. RoundRobin is the default and reproduces
// the seed TaskManager's dispatch sequence byte for byte (pinned by an
// equivalence test in core). LeastLoaded routes on live pilot load —
// wait-pool depth first, free capacity second. CapacityFit is
// shape-aware: it consults each pilot's node-shape composition and its
// scheduler's capacity/queue-depth snapshot, sends a task that only one
// pilot's shapes can ever run to that pilot, and rejects at submit a
// task no attached pilot could ever fit, instead of letting it wedge in
// a blind pilot's wait pool.
//
// Routers keep per-selection state (the round-robin cursor) and are not
// safe for concurrent use: the TaskManager serializes Route calls under
// its own lock, and a Router instance must not be shared between task
// managers.
package router

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/platform"
	"repro/internal/scheduler"
	"repro/internal/spec"
)

// Router names accepted by ByName. The default ("", NameRoundRobin)
// preserves the seed dispatch semantics.
const (
	// NameRoundRobin dispatches tasks over the attached pilots in strict
	// rotation, blind to capacity — the seed TaskManager behaviour.
	NameRoundRobin = "round-robin"
	// NameLeastLoaded routes each task to the pilot with the shallowest
	// scheduler wait pool, breaking ties toward the most free weighted
	// capacity, then the lowest pilot index.
	NameLeastLoaded = "least-loaded"
	// NameCapacityFit routes shape-aware: only pilots whose node shapes
	// can ever run the task are candidates, tasks nobody can ever fit
	// are rejected at submit, and among candidates the router prefers
	// pilots with immediately available capacity, then the least loaded.
	NameCapacityFit = "capacity-fit"
)

// Target is the router's view of one candidate pilot: identity, static
// node-shape composition (what could ever run there) and a live
// capacity/queue-depth snapshot (what the pilot looks like right now).
// *pilot.Pilot satisfies it.
type Target interface {
	// UID identifies the pilot.
	UID() string
	// Shapes returns the pilot's node-shape composition.
	Shapes() []platform.NodeGroup
	// Snapshot returns the pilot scheduler's live load and free capacity.
	Snapshot() scheduler.Snapshot
}

// Router decides, one task at a time, which attached pilot receives a
// task description. Route returns an index into targets. Implementations
// may keep state across calls (the round-robin cursor advances only on a
// successful selection, so a rejected description never perturbs the
// sequence of its successors).
type Router interface {
	// Name returns the router identifier (one of the Name* constants for
	// the built-in routers).
	Name() string
	// Route selects the pilot for d, or returns an error when no target
	// should receive it (ErrNoTargets, or ErrUnroutable for shape-aware
	// routers that reject tasks nobody can ever run).
	Route(targets []Target, d spec.TaskDescription) (int, error)
}

// ErrNoTargets is returned by every router when no pilot is attached.
var ErrNoTargets = errors.New("router: no pilots attached")

// ErrUnroutable is returned by shape-aware routers when no attached
// pilot's node shapes could ever satisfy the task's demand — submitting
// it anywhere would wedge or fail it, so it is rejected at submit.
type ErrUnroutable struct {
	// Task is the task name or UID.
	Task string
	// Cores, GPUs, MemGB echo the per-node demand that fits nowhere.
	Cores int
	GPUs  int
	MemGB float64
}

// Error implements error.
func (e ErrUnroutable) Error() string {
	return fmt.Sprintf("router: task %s (%d cores, %d gpus, %.1f GB per node) fits no attached pilot's node shapes",
		e.Task, e.Cores, e.GPUs, e.MemGB)
}

// ByName returns a fresh instance of the named built-in router. The
// empty name selects NameRoundRobin, keeping the seed dispatch the
// default at every selection point (session config, rpexp -router,
// examples/loadbalance -router). A "+retry" suffix (e.g.
// "round-robin+retry") wraps the named router in WithRetry, giving blind
// routers retry-on-unsatisfiable degradation without changing the
// default dispatch sequence.
func ByName(name string) (Router, error) {
	if base, ok := strings.CutSuffix(name, "+retry"); ok && base != "" {
		inner, err := ByName(base)
		if err != nil {
			return nil, err
		}
		return WithRetry(inner), nil
	}
	switch name {
	case "", NameRoundRobin, "rr":
		return NewRoundRobin(), nil
	case NameLeastLoaded, "least_loaded":
		return NewLeastLoaded(), nil
	case NameCapacityFit, "capacity_fit", "capacityfit":
		return NewCapacityFit(), nil
	default:
		return nil, fmt.Errorf("router: unknown router %q (want %s|%s|%s, optionally +retry)",
			name, NameRoundRobin, NameLeastLoaded, NameCapacityFit)
	}
}

// everFits reports whether some group's node shape covers the per-node
// demand of d, on the same NodeSpec.Covers predicate the scheduler's
// admission check uses.
func everFits(groups []platform.NodeGroup, d spec.TaskDescription) bool {
	for _, g := range groups {
		if g.Spec.Covers(d.Cores, d.GPUs, d.MemGB) {
			return true
		}
	}
	return false
}

// --- round-robin -------------------------------------------------------------

// roundRobin is the seed dispatcher: strict rotation, blind to capacity.
type roundRobin struct{ next int }

// NewRoundRobin returns the default router. Its task→pilot sequence is
// pinned byte-for-byte to the seed TaskManager's round-robin by
// TestRouterRoundRobinMatchesSeedSequence.
func NewRoundRobin() Router { return &roundRobin{} }

// Name implements Router.
func (r *roundRobin) Name() string { return NameRoundRobin }

// Route implements Router: the next pilot in rotation, advancing only on
// success so an unsubmittable description does not shift its successors.
func (r *roundRobin) Route(targets []Target, d spec.TaskDescription) (int, error) {
	if len(targets) == 0 {
		return 0, ErrNoTargets
	}
	i := r.next % len(targets)
	r.next++
	return i, nil
}

// --- least-loaded ------------------------------------------------------------

// leastLoaded routes on live pilot load.
type leastLoaded struct{}

// NewLeastLoaded returns a router that sends each task to the pilot with
// the shallowest scheduler wait pool, breaking ties toward the most free
// weighted capacity (on the global WeightedCapacity scale, so pilots on
// different machines compare meaningfully), then the lowest index.
func NewLeastLoaded() Router { return leastLoaded{} }

// Name implements Router.
func (leastLoaded) Name() string { return NameLeastLoaded }

// Route implements Router.
func (leastLoaded) Route(targets []Target, d spec.TaskDescription) (int, error) {
	if len(targets) == 0 {
		return 0, ErrNoTargets
	}
	best, bestWaiting, bestFree := -1, 0, 0.0
	for i, t := range targets {
		sn := t.Snapshot()
		free := sn.FreeWeighted()
		if best < 0 || sn.Waiting < bestWaiting ||
			(sn.Waiting == bestWaiting && free > bestFree) {
			best, bestWaiting, bestFree = i, sn.Waiting, free
		}
	}
	return best, nil
}

// --- capacity-fit ------------------------------------------------------------

// capacityFit routes shape-aware on snapshots.
type capacityFit struct{}

// NewCapacityFit returns the late-binding router: a task goes only to a
// pilot whose node shapes can ever run it, preferring pilots whose free
// single-node maxima say it may start right now (ranked least-loaded
// among those), falling back to queueing on the least-loaded ever-fitting
// pilot, and rejecting with ErrUnroutable when no attached pilot could
// ever fit it.
func NewCapacityFit() Router { return capacityFit{} }

// Name implements Router.
func (capacityFit) Name() string { return NameCapacityFit }

// Route implements Router.
func (capacityFit) Route(targets []Target, d spec.TaskDescription) (int, error) {
	if len(targets) == 0 {
		return 0, ErrNoTargets
	}
	name := d.UID
	if name == "" {
		name = d.Name
	}
	// Rank: fits-now candidates before queue-only candidates; within each
	// class the shallowest wait pool wins, then the most weighted free
	// capacity, then the lowest index.
	best, bestNow := -1, false
	var bestWaiting int
	var bestFree float64
	for i, t := range targets {
		if !everFits(t.Shapes(), d) {
			continue
		}
		sn := t.Snapshot()
		now := sn.MayFitNow(d.Cores, d.GPUs, d.MemGB)
		free := sn.FreeWeighted()
		better := best < 0 ||
			(now && !bestNow) ||
			(now == bestNow && (sn.Waiting < bestWaiting ||
				(sn.Waiting == bestWaiting && free > bestFree)))
		if better {
			best, bestNow, bestWaiting, bestFree = i, now, sn.Waiting, free
		}
	}
	if best < 0 {
		return 0, ErrUnroutable{Task: name, Cores: d.Cores, GPUs: d.GPUs, MemGB: d.MemGB}
	}
	return best, nil
}

// --- overflow drain ranking --------------------------------------------------

// Ranker is an optional Router capability: when a new pilot attaches and
// the session drains its overflow pool onto it, a Ranker orders the
// parked descriptions by how well the new target serves them, instead of
// blind submission order. RankDrain returns a permutation of indices into
// descs; routers without the capability keep the seed drain order.
type Ranker interface {
	// RankDrain orders descs for draining toward target.
	RankDrain(target Target, descs []spec.TaskDescription) []int
}

// RankDrain implements Ranker for the capacity-fit router: descriptions
// whose demand passes the new pilot's single-node free-maxima check
// (may start right now) drain first, so the fresh capacity starts real
// work immediately instead of queueing a blocked head in front of it;
// within each class submission order is preserved, keeping the drain
// deterministic.
func (capacityFit) RankDrain(target Target, descs []spec.TaskDescription) []int {
	sn := target.Snapshot()
	order := make([]int, 0, len(descs))
	var rest []int
	for i, d := range descs {
		if sn.MayFitNow(d.Cores, d.GPUs, d.MemGB) {
			order = append(order, i)
		} else {
			rest = append(rest, i)
		}
	}
	return append(order, rest...)
}

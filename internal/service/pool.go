package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/proto"
	"repro/internal/simtime"
)

// Caller is the client-side inference interface, satisfied by the msgq
// Client, the REST client adapter, and the load-balanced Pool. Client
// tasks program against Caller, so local and remote model instances are
// interchangeable — the interoperability §III requires.
type Caller interface {
	// Infer performs one synchronous inference and returns the reply and
	// the RT breakdown (communication / service / inference).
	Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error)
	Close() error
}

// EndpointsFn supplies the current candidate endpoints (re-evaluated per
// request, so services joining or leaving are picked up live).
type EndpointsFn func() []proto.Endpoint

// Pool is a load-balanced Caller over a dynamic set of service endpoints:
// the "dynamically rerouting requests to less used service instances" of
// the paper's future work, layered client-side over any Balancer.
type Pool struct {
	net        *msgq.Network
	clock      simtime.Clock
	clientAddr string
	bal        loadbal.Balancer
	endpoints  EndpointsFn

	mu      sync.Mutex
	clients map[string]*Client // by service UID, dialed lazily
	closed  bool
}

// NewPool builds a Pool. bal defaults to round-robin when nil.
func NewPool(net *msgq.Network, clock simtime.Clock, clientAddr string, bal loadbal.Balancer, endpoints EndpointsFn) (*Pool, error) {
	if net == nil || clock == nil || endpoints == nil {
		return nil, fmt.Errorf("service: pool needs network, clock and endpoints")
	}
	if bal == nil {
		bal = loadbal.NewRoundRobin()
	}
	return &Pool{
		net:        net,
		clock:      clock,
		clientAddr: clientAddr,
		bal:        bal,
		endpoints:  endpoints,
		clients:    make(map[string]*Client),
	}, nil
}

// Infer implements Caller: pick an endpoint, reuse (or dial) its
// connection, and forward the call.
func (p *Pool) Infer(ctx context.Context, prompt string, maxTokens int) (proto.InferenceReply, metrics.Breakdown, error) {
	eps := p.endpoints()
	ep, err := p.bal.Pick(eps)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	cl, err := p.client(ep)
	if err != nil {
		return proto.InferenceReply{}, metrics.Breakdown{}, err
	}
	reply, bd, err := cl.Infer(ctx, prompt, maxTokens)
	if err != nil {
		// a dead endpoint may have been withdrawn between Pick and Infer:
		// drop the cached connection so the next call re-dials
		p.evict(ep.ServiceUID)
	}
	return reply, bd, err
}

func (p *Pool) client(ep proto.Endpoint) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, msgq.ErrClosed
	}
	if cl, ok := p.clients[ep.ServiceUID]; ok {
		return cl, nil
	}
	cl, err := Dial(p.net, p.clock, p.clientAddr, ep)
	if err != nil {
		return nil, err
	}
	p.clients[ep.ServiceUID] = cl
	return cl, nil
}

func (p *Pool) evict(uid string) {
	p.mu.Lock()
	if cl, ok := p.clients[uid]; ok {
		delete(p.clients, uid)
		_ = cl.Close()
	}
	p.mu.Unlock()
}

// Close implements Caller: releases every pooled connection.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for uid, cl := range p.clients {
		_ = cl.Close()
		delete(p.clients, uid)
	}
	return nil
}

package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metrics"
)

// LoadConfig parameterizes the open-loop load matrix: the loadgen catalog
// (steady, diurnal, hotspot, straggler, churn) driven at campaign scale on
// the virtual clock.
type LoadConfig struct {
	// Scenarios is the suite to run; empty selects loadgen.Catalog().
	Scenarios []loadgen.Scenario
	// Requests overrides every scenario's request count when positive.
	Requests int
	// Seed overrides every scenario's seed when nonzero.
	Seed uint64
	// ScenarioFilter keeps only scenarios whose name contains one of the
	// comma-separated substrings (empty keeps all).
	ScenarioFilter string
}

// DefaultLoadConfig returns the catalog at its standard campaign sizes.
func DefaultLoadConfig() LoadConfig { return LoadConfig{} }

// LoadRow is one scenario's campaign outcome in the load matrix.
type LoadRow struct {
	Scenario  string
	Offered   int64
	Completed int64
	Failed    int64
	TasksDone int64
	// Replacements counts failover re-placements (nonzero only for churn).
	Replacements int
	P50          time.Duration
	P99          time.Duration
	Max          time.Duration
	// SimDuration is the virtual-time makespan; Wall is the real time the
	// campaign took — their ratio is the harness's time compression.
	SimDuration time.Duration
	Wall        time.Duration
	// SketchBytes is the fixed memory the latency sketch used, independent
	// of the request count.
	SketchBytes int
}

// LoadResult is the scenario-matrix dataset.
type LoadResult struct {
	Cfg  LoadConfig
	Rows []LoadRow
	// Results holds the full per-scenario campaign results (time series,
	// sketches) for callers that want more than the matrix rows.
	Results []*loadgen.Result
}

// RunLoad executes the scenario matrix: each scenario is one open-loop
// campaign on a fresh session over its own virtual clock.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadResult, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = loadgen.Catalog()
	}
	if cfg.ScenarioFilter != "" {
		var keep []loadgen.Scenario
		for _, sc := range scenarios {
			for _, pat := range strings.Split(cfg.ScenarioFilter, ",") {
				if pat = strings.TrimSpace(pat); pat != "" && strings.Contains(sc.Name, pat) {
					keep = append(keep, sc)
					break
				}
			}
		}
		if len(keep) == 0 {
			return nil, fmt.Errorf("experiments: load: filter %q matches no scenario", cfg.ScenarioFilter)
		}
		scenarios = keep
	}

	res := &LoadResult{Cfg: cfg}
	for _, sc := range scenarios {
		if cfg.Requests > 0 {
			sc.Requests = cfg.Requests
			sc.ChurnAt = 0 // re-derive from the new span in WithDefaults
		}
		if cfg.Seed != 0 {
			sc.Seed = cfg.Seed
		}
		r, err := loadgen.Run(ctx, sc)
		if err != nil {
			return res, fmt.Errorf("experiments: load scenario %s: %w", sc.Name, err)
		}
		res.Results = append(res.Results, r)
		res.Rows = append(res.Rows, LoadRow{
			Scenario:     sc.Name,
			Offered:      r.Offered,
			Completed:    r.Completed,
			Failed:       r.Failed,
			TasksDone:    r.TasksDone,
			Replacements: r.Replacements,
			P50:          r.Latency.Quantile(0.50),
			P99:          r.Latency.Quantile(0.99),
			Max:          r.Latency.Max(),
			SimDuration:  r.Duration,
			Wall:         r.Wall,
			SketchBytes:  r.SketchBytes,
		})
	}
	return res, nil
}

// Table renders the scenario matrix.
func (r *LoadResult) Table() metrics.Table {
	t := metrics.Table{
		Title: "Open-loop load matrix — exact-count campaigns on the virtual clock",
		Header: []string{"scenario", "offered", "completed", "failed", "tasks",
			"repl", "p50", "p99", "max", "sim time", "wall", "sketch"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Scenario,
			fmt.Sprintf("%d", row.Offered),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%d", row.TasksDone),
			fmt.Sprintf("%d", row.Replacements),
			fmtDur(row.P50),
			fmtDur(row.P99),
			fmtDur(row.Max),
			fmtDur(row.SimDuration),
			fmtDur(row.Wall),
			fmt.Sprintf("%dB", row.SketchBytes))
	}
	return t
}

// fmtDur renders a duration rounded for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

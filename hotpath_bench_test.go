package repro

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// TestInferenceRoundTripAllocBudget pins the end-to-end allocation cost of
// one client→service→client round trip (envelope construction, transport,
// queueing, serving, reply decode, RT decomposition) so the hot-path work
// of this PR — inline REQ/REP, pooled serving jobs, typed envelope decode
// — cannot silently regress. The seed spent 41 allocs per round trip;
// PR 1 brought it to 17 and PR 8's lazy envelope encoding to 11. The
// budget admits modest headroom over the current cost.
func TestInferenceRoundTripAllocBudget(t *testing.T) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed: 1, Clock: simtime.NewScaled(100000, core.DefaultOrigin), FastBoot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		t.Fatal(err)
	}
	cl, err := sess.Dial(platform.Addr("delta", "", "alloc-client"), inst.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := cl.Infer(ctx, "bench", 0); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 24
	if allocs > budget {
		t.Fatalf("round trip allocates %.1f objects/op, budget %d (seed: 41)", allocs, budget)
	}
}

// TestBatchedRoundTripAllocBudget pins the same round trip through the
// continuous-batching dispatcher (Concurrency 2, MaxBatch 8): serial
// submits exercise the batch-of-one handoff, which must price like the
// single-request path — forming a batch may not add per-request garbage.
// Current cost: 13 allocs (the single path's 11 plus the batch buffers).
func TestBatchedRoundTripAllocBudget(t *testing.T) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed: 1, Clock: simtime.NewScaled(100000, core.DefaultOrigin), FastBoot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	p, err := sess.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Cores: 256, GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	sm := sess.ServiceManager()
	sm.AddPilot(p)
	inst, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", Cores: 1},
		Model:           "noop",
		Concurrency:     2,
		MaxBatch:        8,
		ProbeInterval:   time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sm.WaitReady(ctx, inst.UID()); err != nil {
		t.Fatal(err)
	}
	cl, err := sess.Dial(platform.Addr("delta", "", "alloc-client"), inst.Endpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := cl.Infer(ctx, "bench", 0); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 18
	if allocs > budget {
		t.Fatalf("batched round trip allocates %.1f objects/op, budget %d", allocs, budget)
	}
}

// tcpEchoHandler echoes the request body back in a reply envelope without
// touching it — the transport-measurement handler. Aliasing the request
// Body into the reply is explicitly allowed by the pooled server's buffer
// ownership rules (the request buffer lives until the reply frame is
// encoded), so the round trip isolates framing, pooling, dispatch and the
// waiter table with zero handler-side JSON.
func tcpEchoHandler(env proto.Envelope) proto.Envelope {
	return proto.Envelope{Kind: proto.KindReply, ID: env.ID, From: env.To, To: env.From, Body: env.Body}
}

// tcpBenchSizes are the request payload sizes benchmarked: a minimal
// control message, a typical inference request, and a prompt-heavy one.
var tcpBenchSizes = []struct {
	name    string
	payload int
}{{"64B", 64}, {"1KiB", 1 << 10}, {"8KiB", 8 << 10}}

func tcpBenchEnvelope(tb testing.TB, payload int) proto.Envelope {
	tb.Helper()
	env, err := proto.NewEnvelope(proto.KindRequest, 0, "cli", "srv", time.Time{},
		proto.InferenceRequest{RequestUID: "r", ClientUID: "cli", Model: "noop",
			Prompt: strings.Repeat("x", payload)})
	if err != nil {
		tb.Fatal(err)
	}
	return env
}

// BenchmarkTCPRoundTrip measures one request/reply over the pooled
// zero-copy TCP transport: binary frames into sync.Pool buffers, lazy
// envelope decode with the body as a payload sub-slice, single-encode
// pooled writes, interned header strings, and the lock-striped reusable
// waiter table on the client. Compare per payload size against
// BenchmarkTCPRoundTripSeed (the pre-PR-9 transport, kept verbatim in
// tcp_seed.go) for the PR-9 delta — the gap widens with payload size
// because the seed base64s the body into the envelope JSON and re-buffers
// every frame — and against BenchmarkInprocRequest in internal/msgq for
// the in-process floor.
func BenchmarkTCPRoundTrip(b *testing.B) {
	for _, size := range tcpBenchSizes {
		b.Run(size.name, func(b *testing.B) {
			srv, err := msgq.ListenTCP("127.0.0.1:0", tcpEchoHandler)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := msgq.DialTCP(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			env := tcpBenchEnvelope(b, size.payload)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Request(ctx, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTCPRoundTripSeed is the pre-PR-9 baseline: JSON line frames,
// a fresh buffer and double json.Marshal per write, mutex-mapped pending
// table, goroutine-per-request dispatch.
func BenchmarkTCPRoundTripSeed(b *testing.B) {
	for _, size := range tcpBenchSizes {
		b.Run(size.name, func(b *testing.B) {
			srv, err := msgq.ListenTCPSeed("127.0.0.1:0", tcpEchoHandler)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := msgq.DialTCPSeed(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			env := tcpBenchEnvelope(b, size.payload)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Request(ctx, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTCPRoundTripContended drives the shared connection from
// parallel requesters at the 1KiB payload point: the regime the striped
// waiter table and the bounded per-connection workers exist for.
func BenchmarkTCPRoundTripContended(b *testing.B) {
	srv, err := msgq.ListenTCP("127.0.0.1:0", tcpEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := msgq.DialTCP(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	env := tcpBenchEnvelope(b, 1<<10)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Request(ctx, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPRoundTripContendedSeed is the contended baseline on the
// pre-PR-9 transport.
func BenchmarkTCPRoundTripContendedSeed(b *testing.B) {
	srv, err := msgq.ListenTCPSeed("127.0.0.1:0", tcpEchoHandler)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := msgq.DialTCPSeed(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	env := tcpBenchEnvelope(b, 1<<10)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Request(ctx, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestTCPRoundTripAllocBudget pins the PR-9 acceptance: the pooled
// transport must spend at most half the seed transport's allocations per
// round trip, and stay under an absolute budget so later PRs cannot creep
// back up merely because the seed regressed too. Measured at PR 9 (64B
// payload): seed 38 allocs/op, pooled 5 (the reply-body copy into the
// caller's envelope plus channel/interface scaffolding — the frames
// themselves ride pooled buffers).
func TestTCPRoundTripAllocBudget(t *testing.T) {
	measure := func(dial func() (msgq.Client, error)) float64 {
		c, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		env := tcpBenchEnvelope(t, 64)
		ctx := context.Background()
		return testing.AllocsPerRun(300, func() {
			if _, err := c.Request(ctx, env); err != nil {
				t.Fatal(err)
			}
		})
	}
	seedSrv, err := msgq.ListenTCPSeed("127.0.0.1:0", tcpEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer seedSrv.Close()
	seed := measure(func() (msgq.Client, error) { return msgq.DialTCPSeed(seedSrv.Addr()) })

	srv, err := msgq.ListenTCP("127.0.0.1:0", tcpEchoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pooled := measure(func() (msgq.Client, error) { return msgq.DialTCP(srv.Addr()) })

	if pooled*2 > seed {
		t.Errorf("pooled TCP round trip allocates %.1f objects/op, more than half the seed's %.1f", pooled, seed)
	}
	const budget = 12
	if pooled > budget {
		t.Errorf("pooled TCP round trip allocates %.1f objects/op, budget %d", pooled, budget)
	}
}

// BenchmarkSchedulerThroughput1024 measures grant throughput on a large,
// nearly saturated pilot: 1024 nodes with every node but the last one
// fully allocated, so each grant must skip 1023 busy nodes. This is the
// regime where the paper's continuous scheduler is under the most load
// (large pilots, high utilization) and where a linear first-fit scan is
// at its worst.
func BenchmarkSchedulerThroughput1024(b *testing.B) {
	plat := platform.New("bench", 1024, platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256})
	nodes := plat.Nodes()
	for _, n := range nodes[:len(nodes)-1] {
		if a := n.TryAlloc(64, 8, 256); a == nil {
			b.Fatal("saturation alloc failed")
		}
	}
	done := make(chan scheduler.Placement, 4096)
	sched := scheduler.New(nodes, func(p scheduler.Placement) { done <- p })
	defer sched.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Submit(scheduler.Request{UID: "t", Cores: 1}); err != nil {
			b.Fatal(err)
		}
		p := <-done
		sched.Release(p.Alloc)
	}
}

// BenchmarkSchedulerBestFitThroughputMixed1024 measures the augmented
// findBest's per-grant cost on the pool shape it was built for: a
// saturated mixed 1024-node pool (64 fat 128c/16g nodes, 960 thin 16c
// nodes, every node down to one free core) with a permanently blocked
// whole-fat-node head. Before the min-leftover augmentation this query
// visited every fitting leaf (~10 µs/grant at 1024 nodes); with it the
// branch-and-bound prunes on the per-segment min weighted-free score
// and lands back in the strict/backfill per-grant band.
func BenchmarkSchedulerBestFitThroughputMixed1024(b *testing.B) {
	fat := platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	plat := platform.NewMixed("bench", []platform.NodeGroup{
		{Count: 64, Spec: fat}, {Count: 960, Spec: thin},
	})
	nodes := plat.Nodes()
	for _, n := range nodes {
		sp := n.Spec()
		if a := n.TryAlloc(sp.Cores-1, sp.GPUs, sp.MemGB*0.875); a == nil {
			b.Fatal("saturation alloc failed")
		}
	}
	done := make(chan scheduler.Placement, 4096)
	sched := scheduler.New(nodes, func(p scheduler.Placement) { done <- p },
		scheduler.WithPolicy(scheduler.BestFit(scheduler.BackfillConfig{MaxBypass: -1, MaxDelay: -1})))
	defer sched.Close()
	// The head: a whole-fat-node request that fits nowhere while the
	// saturation allocations live.
	if err := sched.Submit(scheduler.Request{UID: "big", Cores: 128, GPUs: 16, Priority: 100}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Submit(scheduler.Request{UID: "t", Cores: 1}); err != nil {
			b.Fatal(err)
		}
		p := <-done
		sched.Release(p.Alloc)
	}
}

// BenchmarkSchedulerBackfillThroughput1024 measures the per-grant cost of
// the capacity-aware backfill scan in its worst sustained regime: a
// saturated 1024-node pilot (one core free per node) whose wait-pool head
// is a permanently blocked full-node request, so every small-task grant
// pays head-fit rejection plus the backfill selection. Comparing against
// BenchmarkSchedulerThroughput1024 (strict, unblocked head) isolates what
// backfill adds to the PR-1 indexed grant path. The best-fit variant used
// to pay an exhaustive least-leftover node scan here (~10 µs/grant); with
// the index's min-leftover augmentation it prices like the others.
func BenchmarkSchedulerBackfillThroughput1024(b *testing.B) {
	unbounded := scheduler.BackfillConfig{MaxBypass: -1, MaxDelay: -1}
	for _, pol := range []struct {
		name string
		mk   func() scheduler.Policy
	}{
		{"backfill", func() scheduler.Policy { return scheduler.Backfill(unbounded) }},
		{"best-fit", func() scheduler.Policy { return scheduler.BestFit(unbounded) }},
	} {
		b.Run(pol.name, func(b *testing.B) {
			plat := platform.New("bench", 1024, platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256})
			nodes := plat.Nodes()
			for _, n := range nodes {
				if a := n.TryAlloc(63, 8, 224); a == nil {
					b.Fatal("saturation alloc failed")
				}
			}
			done := make(chan scheduler.Placement, 4096)
			sched := scheduler.New(nodes, func(p scheduler.Placement) { done <- p },
				scheduler.WithPolicy(pol.mk()))
			defer sched.Close()
			// The head: a full-node request no node can satisfy while the
			// saturation allocations live.
			if err := sched.Submit(scheduler.Request{UID: "big", Cores: 64, Priority: 100}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sched.Submit(scheduler.Request{UID: "t", Cores: 1}); err != nil {
					b.Fatal(err)
				}
				p := <-done
				sched.Release(p.Alloc)
			}
		})
	}
}

// BenchmarkSchedulerSnapshotCached1024Mixed measures the generation-
// cached probe: a saturated mixed 1024-node pool, with snapshots
// repeating against an unchanged scheduler — the regime a session router
// is in while it places a whole submit batch. A cache hit skips the lock
// and the shape-table copy entirely (zero allocations), so the delta
// against BenchmarkSchedulerSnapshot1024Mixed is the ROADMAP follow-up's
// saving: probing no longer taxes the scheduler when nothing changed.
func BenchmarkSchedulerSnapshotCached1024Mixed(b *testing.B) {
	fat := platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	plat := platform.NewMixed("bench", []platform.NodeGroup{
		{Count: 64, Spec: fat}, {Count: 960, Spec: thin},
	})
	nodes := plat.Nodes()
	for _, n := range nodes[:len(nodes)-1] {
		sp := n.Spec()
		if a := n.TryAlloc(sp.Cores-1, sp.GPUs, 0); a == nil {
			b.Fatal("saturation alloc failed")
		}
	}
	sched := scheduler.New(nodes, func(p scheduler.Placement) {})
	defer sched.Close()
	sched.Snapshot() // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn := sched.Snapshot()
		if len(sn.Shapes) != 2 {
			b.Fatalf("shapes = %d", len(sn.Shapes))
		}
	}
}

// BenchmarkSchedulerSnapshot1024Mixed measures the router-facing load
// probe on a busy mixed 1024-node pool: one Snapshot per op, interleaved
// with a grant/release cycle so the per-shape aggregates are genuinely
// churning (every snapshot is a cache miss). The aggregates are
// maintained incrementally by the capacity index, so a snapshot is one
// lock acquisition plus an O(distinct shapes) copy — it must stay in the
// same per-op band as a grant, or per-task routing would tax the
// scheduler hot path.
func BenchmarkSchedulerSnapshot1024Mixed(b *testing.B) {
	fat := platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	plat := platform.NewMixed("bench", []platform.NodeGroup{
		{Count: 64, Spec: fat}, {Count: 960, Spec: thin},
	})
	nodes := plat.Nodes()
	for _, n := range nodes[:len(nodes)-1] {
		sp := n.Spec()
		if a := n.TryAlloc(sp.Cores-1, sp.GPUs, 0); a == nil {
			b.Fatal("saturation alloc failed")
		}
	}
	done := make(chan scheduler.Placement, 16)
	sched := scheduler.New(nodes, func(p scheduler.Placement) { done <- p })
	defer sched.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sched.Submit(scheduler.Request{UID: "t", Cores: 1}); err != nil {
			b.Fatal(err)
		}
		p := <-done
		sn := sched.Snapshot()
		if len(sn.Shapes) != 2 {
			b.Fatalf("shapes = %d", len(sn.Shapes))
		}
		sched.Release(p.Alloc)
	}
}

package llm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func scaled() simtime.Clock { return simtime.NewScaled(100000, origin) }

func TestCatalogContainsPaperModels(t *testing.T) {
	c := Catalog()
	for _, name := range []string{"llama-8b", "noop", "mistral-7b", "llama-70b", "vit-base"} {
		if _, ok := c[name]; !ok {
			t.Errorf("catalog missing %q", name)
		}
	}
	if !c["noop"].Noop {
		t.Fatal("noop spec not flagged Noop")
	}
	if c["llama-8b"].MemGB <= 0 {
		t.Fatal("llama-8b has no memory footprint")
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("llama-8b"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("gpt-5"); err == nil {
		t.Fatal("Lookup accepted unknown model")
	}
}

func TestLoadTimeCalibration(t *testing.T) {
	// llama-8b init must land in the tens of seconds (Fig. 3 `init`
	// dominates launch at ~2s and publish at sub-second).
	spec, _ := Lookup("llama-8b")
	src := rng.New(5)
	const n = 200
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += spec.LoadTime.Sample(src)
	}
	mean := sum / n
	if mean < 15*time.Second || mean > 40*time.Second {
		t.Fatalf("llama-8b load mean = %v, want tens of seconds", mean)
	}
}

func TestInstanceLoadBlocksOnClock(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	clock := simtime.NewScaled(100000, origin) // 26s → ~260µs real
	m := NewInstance(spec, clock, rng.New(1))
	if m.Loaded() {
		t.Fatal("fresh instance claims loaded")
	}
	d := m.Load()
	if !m.Loaded() {
		t.Fatal("Load did not mark instance loaded")
	}
	if d < 10*time.Second || d > 45*time.Second {
		t.Fatalf("load duration %v outside calibrated band", d)
	}
}

func TestInferUnloadedPanics(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	m := NewInstance(spec, scaled(), rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Infer on unloaded model did not panic")
		}
	}()
	m.Infer("hello", 4)
}

func TestNoopInferInstantWithoutLoad(t *testing.T) {
	spec, _ := Lookup("noop")
	m := NewInstance(spec, simtime.NewVirtual(origin), rng.New(1))
	// virtual clock, never advanced: any Sleep would hang, so returning at
	// all proves zero duration.
	done := make(chan Result, 1)
	go func() { done <- m.Infer("anything", 100) }()
	select {
	case res := <-done:
		if res.OutputTokens != 0 || res.Text != "" {
			t.Fatalf("noop result = %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("noop inference blocked")
	}
}

func TestNoopLoadIsInstant(t *testing.T) {
	spec, _ := Lookup("noop")
	m := NewInstance(spec, simtime.NewVirtual(origin), rng.New(1))
	done := make(chan time.Duration, 1)
	go func() { done <- m.Load() }()
	select {
	case d := <-done:
		if d != 0 {
			t.Fatalf("noop load = %v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("noop load blocked")
	}
}

func TestInferDurationScalesWithTokens(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	spec.RateJitter = 0 // deterministic rates for the comparison
	clock := scaled()
	m := NewInstance(spec, clock, rng.New(2))
	m.Load()
	short := m.Infer("one two three", 8)
	long := m.Infer("one two three", 512)
	if long.Duration <= short.Duration {
		t.Fatalf("512-token budget (%v) not slower than 8 (%v)", long.Duration, short.Duration)
	}
	// generation dominates: 8B at 35 tok/s → 128 default tokens ≈ seconds
	if long.Duration < 500*time.Millisecond {
		t.Fatalf("long inference took %v, want ≥ 0.5s", long.Duration)
	}
}

func TestInferTokenAccounting(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	m := NewInstance(spec, scaled(), rng.New(3))
	m.Load()
	res := m.Infer("the quick brown fox jumps", 64)
	if res.PromptTokens != CountTokens("the quick brown fox jumps") {
		t.Fatalf("prompt tokens = %d", res.PromptTokens)
	}
	if res.OutputTokens < 1 || res.OutputTokens > 64 {
		t.Fatalf("output tokens = %d, want in [1,64]", res.OutputTokens)
	}
	if got := CountTokens(res.Text); got < res.OutputTokens {
		t.Fatalf("text has %d tokens, fewer than claimed %d", got, res.OutputTokens)
	}
}

func TestInferDefaultMaxTokens(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	m := NewInstance(spec, scaled(), rng.New(4))
	m.Load()
	res := m.Infer("hi", 0)
	if res.OutputTokens > spec.DefaultMaxTokens {
		t.Fatalf("output %d exceeds default budget %d", res.OutputTokens, spec.DefaultMaxTokens)
	}
}

func TestInferDeterministicGivenSeed(t *testing.T) {
	spec, _ := Lookup("llama-8b")
	run := func() Result {
		m := NewInstance(spec, scaled(), rng.New(77))
		m.Load()
		return m.Infer("same prompt", 32)
	}
	a, b := run(), run()
	if a.Text != b.Text || a.OutputTokens != b.OutputTokens || a.Duration != b.Duration {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestCountTokens(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"   ", 0},
		{"hello", 2},                // ceil(1*1.3)
		{"hello world", 3},          // ceil(2*1.3)
		{"a b c d e f g h i j", 13}, // 10 words
	}
	for _, c := range cases {
		if got := CountTokens(c.in); got != c.want {
			t.Errorf("CountTokens(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestGenerateText(t *testing.T) {
	src := rng.New(9)
	txt := GenerateText(src, "llama-8b", 10)
	if !strings.HasPrefix(txt, "[llama-8b]") {
		t.Fatalf("text = %q", txt)
	}
	if words := len(strings.Fields(txt)); words != 11 { // tag + 10 tokens
		t.Fatalf("generated %d fields, want 11", words)
	}
	if GenerateText(src, "m", 0) != "" {
		t.Fatal("zero-token generation non-empty")
	}
}

func TestOutputLengthProperty(t *testing.T) {
	// Property: output length always lands in [1, maxTokens].
	spec, _ := Lookup("llama-8b")
	m := NewInstance(spec, scaled(), rng.New(10))
	m.Load()
	f := func(budget uint8) bool {
		max := int(budget%200) + 1
		n := m.outputLength(max)
		return n >= 1 && n <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Continuous batching (PR 8) ----------------------------------------------

// TestInferBatchOfOneByteIdentical: the batching contract's anchor — a
// batch of one must be indistinguishable from Infer, byte for byte and
// duration for duration, so enabling batching never perturbs an
// unbatched workload. Two same-seeded instances serve the same prompts,
// one through Infer and one through InferBatch.
func TestInferBatchOfOneByteIdentical(t *testing.T) {
	mk := func() *Instance {
		spec, err := Lookup("vit-base")
		if err != nil {
			t.Fatal(err)
		}
		return NewInstance(spec, scaled(), rng.New(11).Derive("m"))
	}
	a, b := mk(), mk()
	a.Load()
	b.Load()
	for i := 0; i < 5; i++ {
		prompt := fmt.Sprintf("sample-%d", i)
		ra := a.Infer(prompt, 16)
		rb := b.InferBatch([]BatchItem{{Prompt: prompt, MaxTokens: 16}})[0]
		if ra != rb {
			t.Fatalf("round %d: Infer=%+v InferBatch=%+v", i, ra, rb)
		}
	}
}

// TestInferBatchAmortizesSleep: a batch's single collective sleep is
// max(d_i) + BatchSpill*(sum-max) of the per-item durations — measured
// against a same-seeded twin serving the items one at a time (identical
// RNG stream, so the twin's durations ARE the batch's per-item plans).
// Every batch result must carry the collective duration and the twin's
// exact text and token counts.
func TestInferBatchAmortizesSleep(t *testing.T) {
	spec, err := Lookup("vit-base")
	if err != nil {
		t.Fatal(err)
	}
	batchClock := simtime.NewVirtualAuto(origin)
	m := NewInstance(spec, batchClock, rng.New(23).Derive("m"))
	twin := NewInstance(spec, scaled(), rng.New(23).Derive("m"))
	m.Load()
	twin.Load()

	items := make([]BatchItem, 4)
	for i := range items {
		items[i] = BatchItem{Prompt: fmt.Sprintf("item-%d", i), MaxTokens: 16}
	}
	t0 := batchClock.Now()
	got := m.InferBatch(items)
	elapsed := batchClock.Now().Sub(t0)

	var sum, longest time.Duration
	for i, it := range items {
		want := twin.Infer(it.Prompt, it.MaxTokens)
		sum += want.Duration
		if want.Duration > longest {
			longest = want.Duration
		}
		if got[i].Text != want.Text || got[i].PromptTokens != want.PromptTokens ||
			got[i].OutputTokens != want.OutputTokens {
			t.Fatalf("item %d: batch=%+v single=%+v", i, got[i], want)
		}
	}
	wantD := longest + time.Duration(float64(sum-longest)*spec.BatchSpill)
	if elapsed != wantD {
		t.Fatalf("batch slept %v, want %v (max %v, sum %v)", elapsed, wantD, longest, sum)
	}
	for i, r := range got {
		if r.Duration != wantD {
			t.Fatalf("item %d duration %v, want collective %v", i, r.Duration, wantD)
		}
	}
	if wantD >= sum {
		t.Fatalf("batch of 4 not faster than sequential: %v >= %v", wantD, sum)
	}
}

// TestNoopInferBatchInstant: the noop backend's batches are free and
// empty, one result per item.
func TestNoopInferBatchInstant(t *testing.T) {
	spec, err := Lookup("noop")
	if err != nil {
		t.Fatal(err)
	}
	m := NewInstance(spec, scaled(), rng.New(1))
	res := m.InferBatch(make([]BatchItem, 3))
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, r := range res {
		if r != (Result{}) {
			t.Fatalf("item %d = %+v, want zero", i, r)
		}
	}
}

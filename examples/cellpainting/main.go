// Cell Painting (paper §II-A): data pre-processing/augmentation of a
// cell-painting image dataset runs asynchronously with ViT fine-tuning
// under hyperparameter optimization — training starts as soon as the first
// processed shards are staged, while preprocessing continues.
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cellpainting: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  7,
		Clock: simtime.NewScaled(500000, core.DefaultOrigin),
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return err
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		return err
	}

	// Demo scale: a 64 GB slice of the ~1.6 TB dataset, 8 shards, 8 HPO
	// trials (lr × batch × decay × dropout random search).
	pipe := usecases.CellPainting(usecases.CellPaintingConfig{
		DatasetBytes: 64 << 30,
		Shards:       8,
		HPOTrials:    8,
	}, sess.RNG())

	fmt.Println("running Cell Painting pipeline (use case II-A) ...")
	rep, err := runner.Run(context.Background(), pipe)
	if err != nil {
		return err
	}

	stages := append([]workflow.StageReport{}, rep.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].Started.Before(stages[j].Started) })
	for _, s := range stages {
		fmt.Printf("  stage %-22s tasks=%-3d started=+%-8s duration=%s\n",
			s.Stage, s.Tasks,
			s.Started.Sub(rep.Started).Round(time.Second),
			s.Duration().Round(time.Second))
	}
	fmt.Printf("pipeline finished in %s simulated\n", rep.Duration().Round(time.Second))

	// demonstrate the asynchronous coupling the paper motivates
	prep, _ := rep.StageReport("preprocess-augment")
	train, _ := rep.StageReport("train-hpo")
	if train.Started.Before(prep.Finished) {
		fmt.Printf("training started %s before preprocessing finished (asynchronous coupling)\n",
			prep.Finished.Sub(train.Started).Round(time.Second))
	}
	// show explored hyperparameters
	fmt.Println("explored hyperparameter configurations:")
	for _, st := range pipe.Stages {
		if st.Name != "train-hpo" {
			continue
		}
		for _, tk := range st.Tasks {
			fmt.Printf("  %s: lr=%s batch=%s decay=%s dropout=%s\n",
				tk.Name, tk.Metadata["lr"], tk.Metadata["batch"], tk.Metadata["decay"], tk.Metadata["dropout"])
		}
	}
	return nil
}

package hpo

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

func space() Space {
	return Space{
		{Name: "lr", Choices: []float64{1e-5, 3e-5, 1e-4, 3e-4}},
		{Name: "batch", Choices: []float64{16, 32, 64, 128}},
		{Name: "dropout", Choices: []float64{0, 0.1, 0.2, 0.3}},
	}
}

// objective is a deterministic surrogate: best at lr=1e-4, batch=64,
// dropout=0.1.
func objective(p map[string]float64) float64 {
	loss := 0.0
	loss += math.Abs(math.Log10(p["lr"]) - math.Log10(1e-4))
	loss += math.Abs(p["batch"]-64) / 64
	loss += math.Abs(p["dropout"] - 0.1)
	return loss
}

func TestSpaceValidation(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Fatal("accepted empty space")
	}
	if err := (Space{{Name: "x"}}).Validate(); err == nil {
		t.Fatal("accepted choiceless param")
	}
	if _, err := NewStudy(Space{}, nil, rng.New(1)); err == nil {
		t.Fatal("NewStudy accepted bad space")
	}
	if _, err := NewStudy(space(), nil, nil); err == nil {
		t.Fatal("NewStudy accepted nil source")
	}
}

func TestAskTellBest(t *testing.T) {
	st, err := NewStudy(space(), RandomSampler{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr := st.Ask()
		if tr.State != "running" || len(tr.Params) != 3 {
			t.Fatalf("trial = %+v", tr)
		}
		if err := st.Tell(tr.ID, objective(tr.Params)); err != nil {
			t.Fatal(err)
		}
	}
	best, err := st.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.State != "complete" || math.IsNaN(best.Value) {
		t.Fatalf("best = %+v", best)
	}
	// best of 20 random draws over 64 configs should be decent
	if best.Value > 2.0 {
		t.Fatalf("best value %v implausibly bad", best.Value)
	}
}

func TestTellErrors(t *testing.T) {
	st, _ := NewStudy(space(), RandomSampler{}, rng.New(1))
	if err := st.Tell(999, 1); err == nil {
		t.Fatal("Tell accepted unknown trial")
	}
	tr := st.Ask()
	_ = st.Tell(tr.ID, 1)
	if err := st.Tell(tr.ID, 2); err == nil {
		t.Fatal("double Tell accepted")
	}
}

func TestBestNoCompleted(t *testing.T) {
	st, _ := NewStudy(space(), RandomSampler{}, rng.New(1))
	st.Ask()
	if _, err := st.Best(); err == nil {
		t.Fatal("Best succeeded with no completed trials")
	}
}

func TestTPEBeatsRandomOnAverage(t *testing.T) {
	// run both samplers for the same budget across several seeds and
	// compare the mean best objective: TPE must not lose
	run := func(s Sampler, seed uint64) float64 {
		st, _ := NewStudy(space(), s, rng.New(seed))
		for i := 0; i < 48; i++ {
			tr := st.Ask()
			_ = st.Tell(tr.ID, objective(tr.Params))
		}
		best, _ := st.Best()
		return best.Value
	}
	var sumRand, sumTPE float64
	const seeds = 12
	for s := uint64(0); s < seeds; s++ {
		sumRand += run(RandomSampler{}, s+1)
		sumTPE += run(TPESampler{}, s+1)
	}
	if sumTPE > sumRand*1.05 {
		t.Fatalf("TPE mean best %.3f worse than random %.3f", sumTPE/seeds, sumRand/seeds)
	}
}

func TestTPEFallsBackToRandomEarly(t *testing.T) {
	st, _ := NewStudy(space(), TPESampler{MinHistory: 100}, rng.New(3))
	tr := st.Ask() // far below MinHistory: must still work (random path)
	if len(tr.Params) != 3 {
		t.Fatalf("params = %v", tr.Params)
	}
}

func TestMedianPruning(t *testing.T) {
	st, _ := NewStudy(space(), RandomSampler{}, rng.New(4))
	// two baseline trials report good values at step 0
	a, b := st.Ask(), st.Ask()
	if _, err := st.Report(a.ID, 0, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Report(b.ID, 0, 0.2); err != nil {
		t.Fatal(err)
	}
	// a third trial reporting much worse must be advised to prune
	c := st.Ask()
	prune, err := st.Report(c.ID, 0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if !prune {
		t.Fatal("bad trial not advised to prune")
	}
	if err := st.Prune(c.ID); err != nil {
		t.Fatal(err)
	}
	trials := st.Trials()
	if trials[2].State != "pruned" {
		t.Fatalf("trial c state = %s", trials[2].State)
	}
	// pruned trials cannot be told
	if err := st.Tell(c.ID, 1); err == nil {
		t.Fatal("Tell accepted on pruned trial")
	}
}

func TestReportErrors(t *testing.T) {
	st, _ := NewStudy(space(), RandomSampler{}, rng.New(5))
	if _, err := st.Report(42, 0, 1); err == nil {
		t.Fatal("Report accepted unknown trial")
	}
	if err := st.Prune(42); err == nil {
		t.Fatal("Prune accepted unknown trial")
	}
}

func TestConcurrentAskTell(t *testing.T) {
	st, _ := NewStudy(space(), TPESampler{}, rng.New(6))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tr := st.Ask()
				if err := st.Tell(tr.ID, objective(tr.Params)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(st.Trials()); got != 200 {
		t.Fatalf("trials = %d, want 200", got)
	}
	ids := map[int]bool{}
	for _, tr := range st.Trials() {
		if ids[tr.ID] {
			t.Fatalf("duplicate trial ID %d", tr.ID)
		}
		ids[tr.ID] = true
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []Trial {
		st, _ := NewStudy(space(), TPESampler{}, rng.New(7))
		for i := 0; i < 20; i++ {
			tr := st.Ask()
			_ = st.Tell(tr.ID, objective(tr.Params))
		}
		return st.Trials()
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Fatalf("trial %d diverged across identical runs", i)
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metrics"
)

// ScaleConfig parameterizes the serving-scalability ablation: an
// offered-load sweep over the serving modes (single-threaded worker,
// concurrent worker pool, continuous batching) plus a diurnal
// fixed-vs-autoscaled replica pair. All campaigns host the same model
// (vit-base, milliseconds per request) so mode is the only variable.
type ScaleConfig struct {
	// Requests sizes each sweep campaign (default 20000).
	Requests int
	// DiurnalRequests sizes the diurnal pair (default 48000: one full
	// 120s wave at the 400 req/s mean rate).
	DiurnalRequests int
	// Seed drives every campaign (default 7).
	Seed uint64
}

// DefaultScaleConfig returns the ablation at its standard campaign sizes.
func DefaultScaleConfig() ScaleConfig { return ScaleConfig{} }

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.DiurnalRequests <= 0 {
		c.DiurnalRequests = 48000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// ScaleRow is one campaign's outcome in the scaling ablation.
type ScaleRow struct {
	Config    string
	Rate      float64
	Offered   int64
	Completed int64
	Failed    int64
	// Throughput is completed requests per second of virtual time — at
	// saturating offered rates this is the serving mode's capacity.
	Throughput float64
	P50        time.Duration
	P99        time.Duration
	// PeakReplicas is the autoscaler's high-water replica count (1 for
	// every fixed-replica configuration).
	PeakReplicas int
	SimDuration  time.Duration
	Wall         time.Duration
}

// ScaleResult is the scaling-ablation dataset.
type ScaleResult struct {
	Cfg  ScaleConfig
	Rows []ScaleRow
	// Results holds the full per-campaign results for callers that want
	// more than the rows.
	Results []*loadgen.Result
}

// scaleQueueCap comfortably exceeds the worst-case backlog of any
// ablation campaign, so no arrival is ever rejected and every count
// stays exact: Completed == Offered == Requests for every row.
const scaleQueueCap = 200000

// RunScale executes the scaling ablation.
//
// Sweep: three serving modes — single (Concurrency 1), concurrent
// (Concurrency 4), batched (Concurrency 4, MaxBatch 8) — each offered
// Poisson load below, near and far above the single-worker capacity
// (~280 req/s for vit-base at 8 tokens). At the saturating rate the
// throughput column reads off each mode's capacity directly.
//
// Diurnal pair: a sinusoidal arrival wave (mean 400 req/s, amplitude
// 0.8, period 120s) whose peak exceeds one worker's capacity, served by
// a fixed single replica versus the autoscaler bounded at four
// replicas. The tail-latency contrast is the autoscaler's payoff.
func RunScale(ctx context.Context, cfg ScaleConfig) (*ScaleResult, error) {
	cfg = cfg.withDefaults()
	res := &ScaleResult{Cfg: cfg}

	modes := []struct {
		name     string
		conc     int
		maxBatch int
	}{
		{"single", 1, 1},
		{"concurrent", 4, 1},
		{"batched", 4, 8},
	}
	rates := []float64{250, 1000, 8000}
	var scenarios []loadgen.Scenario
	for _, rate := range rates {
		for _, m := range modes {
			scenarios = append(scenarios, loadgen.Scenario{
				Name:        fmt.Sprintf("%s@%g", m.name, rate),
				Kind:        loadgen.KindSteady,
				Requests:    cfg.Requests,
				Rate:        rate,
				Services:    1,
				Concurrency: m.conc,
				MaxBatch:    m.maxBatch,
				QueueCap:    scaleQueueCap,
				Seed:        cfg.Seed,
				Model:       "vit-base",
				MaxTokens:   8,
			})
		}
	}
	diurnal := loadgen.Scenario{
		Name:        "diurnal-fixed",
		Kind:        loadgen.KindDiurnal,
		Requests:    cfg.DiurnalRequests,
		Rate:        400,
		WaveAmp:     0.8,
		WavePeriod:  120 * time.Second,
		Services:    1,
		Concurrency: 1,
		QueueCap:    scaleQueueCap,
		Seed:        cfg.Seed,
		Model:       "vit-base",
		MaxTokens:   8,
	}
	scenarios = append(scenarios, diurnal)
	autoscaled := diurnal
	autoscaled.Name = "diurnal-autoscaled"
	autoscaled.MinReplicas = 1
	autoscaled.MaxReplicas = 4
	scenarios = append(scenarios, autoscaled)

	for _, sc := range scenarios {
		r, err := loadgen.Run(ctx, sc)
		if err != nil {
			return res, fmt.Errorf("experiments: scale campaign %s: %w", sc.Name, err)
		}
		throughput := 0.0
		if r.Duration > 0 {
			throughput = float64(r.Completed) / r.Duration.Seconds()
		}
		res.Results = append(res.Results, r)
		res.Rows = append(res.Rows, ScaleRow{
			Config:       sc.Name,
			Rate:         sc.Rate,
			Offered:      r.Offered,
			Completed:    r.Completed,
			Failed:       r.Failed,
			Throughput:   throughput,
			P50:          r.Latency.Quantile(0.50),
			P99:          r.Latency.Quantile(0.99),
			PeakReplicas: r.PeakReplicas,
			SimDuration:  r.Duration,
			Wall:         r.Wall,
		})
	}
	return res, nil
}

// Table renders the scaling ablation.
func (r *ScaleResult) Table() metrics.Table {
	t := metrics.Table{
		Title: "Serving scalability — batching and replica autoscaling (vit-base)",
		Header: []string{"config", "rate", "offered", "completed", "failed",
			"throughput", "p50", "p99", "peak reps", "sim time", "wall"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config,
			fmt.Sprintf("%g/s", row.Rate),
			fmt.Sprintf("%d", row.Offered),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%.0f/s", row.Throughput),
			fmtDur(row.P50),
			fmtDur(row.P99),
			fmt.Sprintf("%d", row.PeakReplicas),
			fmtDur(row.SimDuration),
			fmtDur(row.Wall))
	}
	return t
}

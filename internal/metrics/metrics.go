// Package metrics collects and aggregates the timing measurements of the
// paper's performance characterization: Bootstrap Time (BT), Response Time
// (RT) and Inference Time (IT), each decomposed into components (launch /
// init / publish for BT; communication / service / inference for RT and
// IT). It provides distribution statistics (mean, std, percentiles) so the
// experiment harness can report averages and observe outliers and long
// tails, as §IV requires.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats summarizes a duration sample.
type Stats struct {
	N    int
	Mean time.Duration
	Std  time.Duration
	Min  time.Duration
	Max  time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
}

// Compute returns the summary statistics of values. A nil or empty input
// yields a zero Stats.
func Compute(values []time.Duration) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	sorted := make([]time.Duration, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum, sumsq float64
	for _, v := range sorted {
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return Stats{
		N:    len(sorted),
		Mean: time.Duration(mean),
		Std:  time.Duration(math.Sqrt(variance)),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  percentile(sorted, 0.50),
		P95:  percentile(sorted, 0.95),
		P99:  percentile(sorted, 0.99),
	}
}

// percentile uses the nearest-rank method on a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the stats compactly in seconds.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.3fs std=%.3fs p50=%.3fs p95=%.3fs max=%.3fs",
		s.N, s.Mean.Seconds(), s.Std.Seconds(), s.P50.Seconds(), s.P95.Seconds(), s.Max.Seconds())
}

// Collector accumulates named duration series. It is safe for concurrent
// use.
//
// Locking is per-series: the collector-level RWMutex only guards the name
// map (read-locked on the hot path, write-locked to create a series), and
// each series carries its own mutex around the sample append. Writers to
// different series therefore never contend, which matters when a load
// harness feeds millions of samples from many goroutines — under the old
// single global mutex the collector itself was the bottleneck (see
// BenchmarkCollectorContention).
type Collector struct {
	mu     sync.RWMutex
	series map[string]*sampleSeries
}

type sampleSeries struct {
	mu   sync.Mutex
	vals []time.Duration
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[string]*sampleSeries)}
}

// get returns the named series, creating it on first use.
func (c *Collector) get(name string) *sampleSeries {
	c.mu.RLock()
	s := c.series[name]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.series[name]; s == nil {
		s = &sampleSeries{vals: make([]time.Duration, 0, 64)}
		c.series[name] = s
	}
	return s
}

// Add appends v to the named series.
func (c *Collector) Add(name string, v time.Duration) {
	s := c.get(name)
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

// AddAll appends every component of a breakdown, prefixing each component
// name with prefix and a dot.
func (c *Collector) AddAll(prefix string, components map[string]time.Duration) {
	for k, v := range components {
		c.Add(prefix+"."+k, v)
	}
}

// Series returns a copy of the named series (nil when absent).
func (c *Collector) Series(name string) []time.Duration {
	c.mu.RLock()
	s := c.series[name]
	c.mu.RUnlock()
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vals == nil {
		return nil
	}
	return append([]time.Duration{}, s.vals...)
}

// Stats computes summary statistics for the named series.
func (c *Collector) Stats(name string) Stats { return Compute(c.Series(name)) }

// Count returns the number of samples in the named series.
func (c *Collector) Count(name string) int {
	c.mu.RLock()
	s := c.series[name]
	c.mu.RUnlock()
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Names returns the sorted series names.
func (c *Collector) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.series))
	for n := range c.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds other's series into c.
func (c *Collector) Merge(other *Collector) {
	for _, name := range other.Names() {
		vals := other.Series(name)
		s := c.get(name)
		s.mu.Lock()
		s.vals = append(s.vals, vals...)
		s.mu.Unlock()
	}
}

// Reset clears all series.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.series = make(map[string]*sampleSeries)
	c.mu.Unlock()
}

// --- breakdown records -----------------------------------------------------

// BTComponents are the bootstrap-time components of Exp 1 (Fig. 3).
var BTComponents = []string{"launch", "init", "publish"}

// RTComponents are the response-time components of Exp 2/3 (Figs. 4-6).
var RTComponents = []string{"communication", "service", "inference"}

// Breakdown is one measurement decomposed into named components.
type Breakdown struct {
	Components map[string]time.Duration
}

// Total sums all components.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, v := range b.Components {
		t += v
	}
	return t
}

// --- table rendering --------------------------------------------------------

// Table is a plain-text aligned table, used by the experiment harness to
// print the paper's tables and the data series behind its figures.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned textual form.
func (t Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		sb.WriteString(strings.Repeat("-", total-2))
		sb.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// WriteCSV exports every series as "series,sample_idx,seconds" rows for
// offline analysis/plotting.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,sample_idx,seconds\n"); err != nil {
		return err
	}
	for _, name := range c.Names() {
		for i, v := range c.Series(name) {
			if _, err := fmt.Fprintf(w, "%s,%d,%.9f\n", name, i, v.Seconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// FmtSeconds renders d as a fixed-point seconds string.
func FmtSeconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// FmtMeanStd renders "mean ± std" in seconds for a stats record.
func FmtMeanStd(s Stats) string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean.Seconds(), s.Std.Seconds())
}

// Package loadbal distributes client inference requests across service
// instances. The paper's prototype employs "only a rudimentary load
// balancing" (round-robin); its future work calls for "dynamically
// rerouting requests to less used service instances". Both ends of that
// spectrum are implemented here and compared by the ablation benchmarks:
// the endpoint-slice Balancer interface (round-robin, uniform random,
// least-pending) for pooled clients, and the index-addressed
// LoadView/Picker seam for the lock-free replica-group hot path —
// power-of-two-choices, blind rotation, and the full-scan least-loaded
// baseline.
package loadbal

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/rng"
)

// ErrNoEndpoints is returned when Pick is called with no candidates.
var ErrNoEndpoints = errors.New("loadbal: no endpoints")

// Balancer picks one endpoint out of the candidate set.
type Balancer interface {
	Pick(eps []proto.Endpoint) (proto.Endpoint, error)
}

// LoadView is an index-addressed snapshot of one balancing group's
// candidates with per-candidate load gauges. Implementations must be
// immutable (membership changes swap in a fresh view) and their Load
// reads lock-free, so a Picker can run on the request hot path without
// contention.
type LoadView interface {
	Len() int
	// Load returns candidate i's reported load depth (queued plus
	// in-flight) and the report's timestamp in nanoseconds on the
	// caller's clock (0 = never reported).
	Load(i int) (depth int, at int64)
}

// Picker selects one candidate index out of a LoadView. minAt is the
// staleness horizon on the same nanosecond timebase: a report older than
// minAt carries no information about the present and load-aware pickers
// must not act on it. Pickers must be allocation-free and lock-free —
// they run once per request on the balanced hot path.
type Picker interface {
	PickIndex(v LoadView, minAt int64) int
}

// splitmix64 advances and mixes a 64-bit state word (Vigna's SplitMix64
// finalizer). One atomic add plus this mix is the whole per-pick RNG
// cost, and the sequence is reproducible for a given seed.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

const splitmixGamma = 0x9E3779B97F4A7C15

// P2C is the power-of-two-choices picker: two seeded random probes, take
// the less loaded. Constant cost regardless of group size, and within a
// constant factor of the full-scan least-loaded tail under skew (the
// classic balanced-allocations result). When either probe's load report
// is older than the staleness horizon the picker falls back to blind
// rotation — acting on a stale gauge herds requests onto whichever
// replica happened to look idle an interval ago.
type P2C struct {
	state atomic.Uint64 // seeded splitmix64 walker: one Add per pick
	rr    atomic.Uint64 // stale-report fallback rotation
}

// NewP2C returns a power-of-two-choices picker with a seeded probe
// sequence.
func NewP2C(seed uint64) *P2C {
	p := &P2C{}
	p.state.Store(seed)
	return p
}

// PickIndex implements Picker: both probes come from one 64-bit draw
// (low and high halves), so the cost is one atomic add, one mix and two
// gauge reads. Identical probes are nudged apart; on a stale report the
// pick degrades to round-robin rather than trusting dead information.
func (p *P2C) PickIndex(v LoadView, minAt int64) int {
	n := v.Len()
	if n <= 1 {
		return 0
	}
	r := splitmix64(p.state.Add(splitmixGamma))
	a := int((r & 0xFFFFFFFF) % uint64(n))
	b := int((r >> 32) % uint64(n))
	if b == a {
		b = (b + 1) % n
	}
	da, ta := v.Load(a)
	db, tb := v.Load(b)
	if ta < minAt || tb < minAt {
		return int((p.rr.Add(1) - 1) % uint64(n))
	}
	if db < da {
		return b
	}
	return a
}

// RoundRobin cycles through candidates in order — the paper's rudimentary
// strategy. As a Picker it is the load-blind baseline of the hotspot
// ablation.
type RoundRobin struct {
	n atomic.Uint64
}

// NewRoundRobin returns a round-robin balancer.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Pick implements Balancer.
func (b *RoundRobin) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	return eps[(b.n.Add(1)-1)%uint64(len(eps))], nil
}

// PickIndex implements Picker, ignoring the load gauges entirely.
func (b *RoundRobin) PickIndex(v LoadView, _ int64) int {
	n := v.Len()
	if n <= 1 {
		return 0
	}
	return int((b.n.Add(1) - 1) % uint64(n))
}

// LeastLoaded is the full-scan argmin Picker: O(group) per pick, the
// quality ceiling the ablation holds P2C against. Ties break on a
// rotating offset so equally-idle replicas share bursts that land
// between two load reports.
type LeastLoaded struct {
	n atomic.Uint64
}

// NewLeastLoaded returns a full-scan least-loaded picker.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// PickIndex implements Picker.
func (b *LeastLoaded) PickIndex(v LoadView, _ int64) int {
	n := v.Len()
	if n <= 1 {
		return 0
	}
	offset := int((b.n.Add(1) - 1) % uint64(n))
	best, bestDepth := -1, 0
	for i := 0; i < n; i++ {
		j := offset + i
		if j >= n {
			j -= n
		}
		d, _ := v.Load(j)
		if best == -1 || d < bestDepth {
			best, bestDepth = j, d
		}
	}
	return best
}

// PickerByName builds a Picker from its ablation name: "p2c",
// "round-robin" (alias "rr"), or "least-loaded" (alias "least"). The
// seed drives P2C's probe sequence and is ignored by the others.
func PickerByName(name string, seed uint64) (Picker, error) {
	switch name {
	case "", "p2c":
		return NewP2C(seed), nil
	case "round-robin", "rr":
		return NewRoundRobin(), nil
	case "least-loaded", "least":
		return NewLeastLoaded(), nil
	default:
		return nil, fmt.Errorf("loadbal: unknown picker %q (want p2c|round-robin|least-loaded)", name)
	}
}

// Random picks uniformly at random.
type Random struct{ src *rng.Source }

// NewRandom returns a random balancer over src.
func NewRandom(src *rng.Source) *Random { return &Random{src: src} }

// Pick implements Balancer.
func (b *Random) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	return eps[b.src.Intn(len(eps))], nil
}

// DepthFunc reports the live queue depth of a service.
type DepthFunc func(serviceUID string) int

// depthView adapts an endpoint slice plus a DepthFunc to the LoadView
// seam. The depth probe is synchronous, so every reading counts as
// maximally fresh.
type depthView struct {
	eps   []proto.Endpoint
	depth DepthFunc
}

func (v depthView) Len() int { return len(v.eps) }

func (v depthView) Load(i int) (int, int64) {
	return v.depth(v.eps[i].ServiceUID), math.MaxInt64
}

// LeastPending routes to the endpoint with the shallowest queue — the
// "less used service instances" strategy of the paper's future work. Ties
// break round-robin to avoid thundering on one instance. It is the
// endpoint-slice adapter over the LeastLoaded picker.
type LeastPending struct {
	depth DepthFunc
	scan  LeastLoaded
}

// NewLeastPending returns a queue-depth-aware balancer.
func NewLeastPending(depth DepthFunc) *LeastPending {
	return &LeastPending{depth: depth}
}

// Pick implements Balancer.
func (b *LeastPending) Pick(eps []proto.Endpoint) (proto.Endpoint, error) {
	if len(eps) == 0 {
		return proto.Endpoint{}, ErrNoEndpoints
	}
	return eps[b.scan.PickIndex(depthView{eps: eps, depth: b.depth}, 0)], nil
}

// Package spec defines the description records users submit to the
// runtime: PilotDescription, TaskDescription and ServiceDescription. They
// mirror RADICAL-Pilot's description API, with ServiceDescription extending
// the Task abstraction exactly as the paper does: "Implementation of the
// service infrastructure includes extending RADICAL-Pilot's Task
// abstraction into Service Task with corresponding service management and
// interface capabilities."
package spec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/rng"
)

// StageMode selects how a staging directive moves data.
type StageMode string

// Staging modes.
const (
	StageCopy     StageMode = "copy"     // intra-platform filesystem copy
	StageLink     StageMode = "link"     // constant-time symlink
	StageTransfer StageMode = "transfer" // wide-area (Globus-like) transfer
)

// StagingDirective describes one data movement for a task or service.
type StagingDirective struct {
	// Source and Target are storage URIs "platform:/path".
	Source string
	Target string
	// Bytes is the payload size.
	Bytes int64
	// Mode selects the movement mechanism.
	Mode StageMode
}

// TaskFunc is a function payload: tasks can carry executable logic (the
// client tasks of the paper's experiments send inference requests from
// inside such payloads). ctx is cancelled when the task is cancelled.
type TaskFunc func(ctx context.Context) error

// TaskDescription describes one unit of work.
type TaskDescription struct {
	// UID is assigned by the manager when empty.
	UID string
	// Name is a human-readable label.
	Name string
	// Cores, GPUs and MemGB are per-task resource requirements on a
	// single node.
	Cores int
	GPUs  int
	MemGB float64
	// Duration is the simulated compute payload; ignored when Func is
	// set.
	Duration rng.DurationDist
	// Func is an optional executable payload run in-process.
	Func TaskFunc `json:"-"`
	// Priority orders scheduling: higher first. The ServiceManager raises
	// service priority so services start before compute tasks, as §III
	// requires.
	Priority int
	// Pilot optionally pins the task to the named pilot, bypassing the
	// session's task router. Pinned tasks are never re-routed: if the
	// pilot shuts down first, the task fails. workflow.Stage.Pilot sets
	// this for a whole stage.
	Pilot string
	// InputStaging and OutputStaging run before/after execution.
	InputStaging  []StagingDirective
	OutputStaging []StagingDirective
	// Metadata carries free-form key/values.
	Metadata map[string]string
}

// Validate checks the description for structural errors.
func (d TaskDescription) Validate() error {
	if d.Cores < 0 || d.GPUs < 0 || d.MemGB < 0 {
		return fmt.Errorf("spec: task %q: negative resource request", d.Name)
	}
	if d.Cores == 0 && d.GPUs == 0 && d.Func == nil && d.Duration.IsZero() {
		return fmt.Errorf("spec: task %q: empty task (no resources, no payload)", d.Name)
	}
	for _, sd := range append(append([]StagingDirective{}, d.InputStaging...), d.OutputStaging...) {
		if err := sd.Validate(); err != nil {
			return fmt.Errorf("spec: task %q: %w", d.Name, err)
		}
	}
	return nil
}

// Validate checks a staging directive.
func (sd StagingDirective) Validate() error {
	if sd.Source == "" || sd.Target == "" {
		return errors.New("staging directive with empty endpoint")
	}
	if sd.Bytes < 0 {
		return errors.New("staging directive with negative size")
	}
	switch sd.Mode {
	case StageCopy, StageLink, StageTransfer:
		return nil
	default:
		return fmt.Errorf("staging directive with unknown mode %q", sd.Mode)
	}
}

// ServicePriority is the default priority boost services receive over
// plain tasks.
const ServicePriority = 100

// ServiceDescription extends TaskDescription into a Service Task.
type ServiceDescription struct {
	TaskDescription

	// Model names the capability the service exposes (catalog name, e.g.
	// "llama-8b" or "noop").
	Model string
	// Concurrency is the number of requests the service handles at once.
	// The paper's prototype is single-threaded: default 1.
	Concurrency int
	// QueueCap bounds the service request queue (default 4096).
	QueueCap int
	// MaxBatch bounds how many compatible queued requests one serving
	// worker coalesces into a single batched inference (continuous
	// batching). 0 or 1 disables batching.
	MaxBatch int
	// MinReplicas and MaxReplicas bound the session autoscaler. A
	// MaxReplicas above 1 enables demand-driven scaling: the session
	// watches the service's queue depth over the session clock and
	// spawns/retires replica instances under this logical service UID.
	// MinReplicas defaults to 1; zero values leave the service unscaled.
	MinReplicas int
	MaxReplicas int
	// ScaleInterval is the autoscaler evaluation period on the session
	// clock (default 2s).
	ScaleInterval time.Duration
	// ScaleUpQueue is the mean queued-requests-per-replica threshold at
	// or above which the autoscaler adds a replica (default 4).
	ScaleUpQueue float64
	// ScaleDownQueue is the mean queued-requests-per-replica threshold at
	// or below which an evaluation counts toward retiring a replica
	// (default 1).
	ScaleDownQueue float64
	// ScaleStabilize is the number of consecutive at-or-below-
	// ScaleDownQueue evaluations required before a replica is retired —
	// the scale-down hysteresis that keeps a bursty trough from thrashing
	// replicas (default 3).
	ScaleStabilize int
	// WarmStandbys pre-bootstraps this many standby instances on pilots
	// distinct from the base host, held suspended (published but not
	// resolvable) in the session endpoint registry. When the hosting pilot
	// dies, the failure watcher promotes a standby with a single
	// generation-bump publish instead of a full re-bootstrap, and the
	// standby pool is re-filled in the background. Zero disables.
	WarmStandbys int
	// ProbeInterval is the liveness-probe period of the ServiceManager
	// (default 5s).
	ProbeInterval time.Duration
	// StartTimeout bounds launch+init+publish before the manager declares
	// the service failed (default 10m).
	StartTimeout time.Duration
	// Persistent services survive workload completion and must be
	// terminated explicitly (remote/R3-style deployments).
	Persistent bool
}

// Validate checks the service description.
func (d ServiceDescription) Validate() error {
	if d.Model == "" {
		return fmt.Errorf("spec: service %q: no model", d.Name)
	}
	if d.Concurrency < 0 || d.QueueCap < 0 {
		return fmt.Errorf("spec: service %q: negative concurrency/queue", d.Name)
	}
	if d.MaxBatch < 0 {
		return fmt.Errorf("spec: service %q: negative max batch", d.Name)
	}
	if d.MinReplicas < 0 || d.MaxReplicas < 0 {
		return fmt.Errorf("spec: service %q: negative replica bound", d.Name)
	}
	if d.MaxReplicas > 0 && d.MinReplicas > d.MaxReplicas {
		return fmt.Errorf("spec: service %q: min replicas %d above max %d",
			d.Name, d.MinReplicas, d.MaxReplicas)
	}
	if d.ScaleUpQueue < 0 || d.ScaleDownQueue < 0 || d.ScaleStabilize < 0 {
		return fmt.Errorf("spec: service %q: negative autoscaler threshold", d.Name)
	}
	if d.WarmStandbys < 0 {
		return fmt.Errorf("spec: service %q: negative warm-standby count", d.Name)
	}
	// service tasks hold resources for the serving process itself; a
	// zero-resource service is legal (noop service on a shared core).
	if d.Cores < 0 || d.GPUs < 0 || d.MemGB < 0 {
		return fmt.Errorf("spec: service %q: negative resource request", d.Name)
	}
	return nil
}

// PilotDescription requests a resource allocation on one platform.
type PilotDescription struct {
	UID string
	// Platform names the target machine ("frontier", "delta", "r3").
	Platform string
	// Nodes requests whole nodes. When zero, Cores/GPUs select the node
	// count (ceil over node size).
	Nodes int
	Cores int
	GPUs  int
	// Runtime bounds the pilot's lifetime (0 = unbounded).
	Runtime time.Duration
}

// Validate checks the pilot description.
func (d PilotDescription) Validate() error {
	if d.Platform == "" {
		return errors.New("spec: pilot without platform")
	}
	if d.Nodes < 0 || d.Cores < 0 || d.GPUs < 0 {
		return errors.New("spec: pilot with negative resource request")
	}
	if d.Nodes == 0 && d.Cores == 0 && d.GPUs == 0 {
		return errors.New("spec: pilot with empty resource request")
	}
	return nil
}

package core

// Tests for the session-level routing seam: round-robin seed
// equivalence, the Submit partial-failure contract, capacity-fit routing
// on mismatched pilots, re-routing of queued tasks across pilot
// shutdown, the session overflow pool, and the Wait error path for tasks
// owned by a dead pilot.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// heteroSession builds a session on a private fat+thin campus and
// acquires one pilot per partition (fat first), exercising exactly the
// mismatched-pilot layout of the route ablation at test scale.
func heteroSession(t *testing.T, rt string) (*Session, *pilot.Pilot, *pilot.Pilot) {
	t.Helper()
	fat := platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 256}
	thin := platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}
	mix := platform.NewMixed("campus", []platform.NodeGroup{
		{Count: 2, Spec: fat}, {Count: 4, Spec: thin},
	})
	s, err := NewSession(SessionConfig{
		Seed:     3,
		Clock:    simtime.NewScaled(100000, DefaultOrigin),
		Topology: platform.NewTopology(mix),
		FastBoot: true,
		Router:   rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	fatP, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "campus", Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	thinP, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "campus", Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fatP.Shapes()) != 1 || fatP.Shapes()[0].Spec != fat {
		t.Fatalf("fat pilot shapes = %+v", fatP.Shapes())
	}
	if len(thinP.Shapes()) != 1 || thinP.Shapes()[0].Spec != thin {
		t.Fatalf("thin pilot shapes = %+v", thinP.Shapes())
	}
	return s, fatP, thinP
}

// TestRouterRoundRobinMatchesSeedSequence is the equivalence pin the
// tentpole requires: with the default router, the task→pilot sequence is
// byte-for-byte the seed TaskManager's round-robin — including across
// batch boundaries — verified against an inline reimplementation of the
// seed dispatch loop.
func TestRouterRoundRobinMatchesSeedSequence(t *testing.T) {
	s := newSession(t, 100000)
	tm := s.TaskManager()
	var pilots []*pilot.Pilot
	for i := 0; i < 3; i++ {
		p, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		pilots = append(pilots, p)
		tm.AddPilot(p)
	}
	if got := tm.RouterName(); got != router.NameRoundRobin {
		t.Fatalf("default router = %q, want %q", got, router.NameRoundRobin)
	}

	// Seed reference: pilots[(start+i) % len(pilots)], start accumulated
	// across batches.
	rr := 0
	seedPick := func() string {
		uid := pilots[rr%len(pilots)].UID()
		rr++
		return uid
	}

	ctx := context.Background()
	for _, batch := range []int{1, 4, 2, 7} {
		descs := make([]spec.TaskDescription, batch)
		for i := range descs {
			descs[i] = spec.TaskDescription{Name: "t", Cores: 1, Duration: rng.ConstDuration(time.Second)}
		}
		tasks, err := tm.Submit(ctx, descs...)
		if err != nil {
			t.Fatal(err)
		}
		for i, task := range tasks {
			if want := seedPick(); task.Pilot() != want {
				t.Fatalf("batch %d task %d routed to %s, seed sequence says %s",
					batch, i, task.Pilot(), want)
			}
		}
	}
}

// TestRouterSelectionThreadsToSession pins the config seam: a bad router
// name fails session construction, a named router is live in the task
// manager, and the default stays round-robin.
func TestRouterSelectionThreadsToSession(t *testing.T) {
	if _, err := NewSession(SessionConfig{Seed: 1, Router: "best-fit"}); err == nil {
		t.Fatal("NewSession accepted an unknown router name")
	}
	s, err := NewSession(SessionConfig{
		Seed:   1,
		Clock:  simtime.NewScaled(100000, DefaultOrigin),
		Router: "capacity-fit",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.TaskManager().RouterName(); got != router.NameCapacityFit {
		t.Fatalf("router = %q, want capacity-fit", got)
	}
}

// TestTaskManagerSubmitPartialFailure pins the satellite contract: a
// mid-batch failure returns the successfully submitted prefix AND the
// error, and the router's sequence does not advance for the descriptions
// that were never submitted.
func TestTaskManagerSubmitPartialFailure(t *testing.T) {
	s := newSession(t, 100000)
	tm := s.TaskManager()
	var pilots []*pilot.Pilot
	for i := 0; i < 2; i++ {
		p, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		pilots = append(pilots, p)
		tm.AddPilot(p)
	}
	ctx := context.Background()
	ok := spec.TaskDescription{Name: "ok", Cores: 1, Duration: rng.ConstDuration(time.Second)}
	bad := spec.TaskDescription{Name: "bad", Cores: -1}

	tasks, err := tm.Submit(ctx, ok, bad, ok)
	if err == nil {
		t.Fatal("Submit swallowed the invalid description")
	}
	if len(tasks) != 1 {
		t.Fatalf("submitted prefix = %d tasks, want 1", len(tasks))
	}
	if tasks[0].Pilot() != pilots[0].UID() {
		t.Fatalf("prefix task on %s, want %s", tasks[0].Pilot(), pilots[0].UID())
	}
	// The failed and unsubmitted descriptions must not have advanced the
	// rotation: the next submission continues at pilot 1.
	more, err := tm.Submit(ctx, ok, ok)
	if err != nil {
		t.Fatal(err)
	}
	if more[0].Pilot() != pilots[1].UID() || more[1].Pilot() != pilots[0].UID() {
		t.Fatalf("continuation routed to %s,%s; want %s,%s (no advance for unsubmitted descs)",
			more[0].Pilot(), more[1].Pilot(), pilots[1].UID(), pilots[0].UID())
	}
}

// TestCapacityFitMismatchedPilotsEndToEnd drives the tentpole scenario
// at test scale: on fat+thin mismatched pilots, capacity-fit sends every
// shape-constrained task to the only pilot that can ever run it (all
// complete), and rejects tasks nobody could ever fit at submit time.
func TestCapacityFitMismatchedPilotsEndToEnd(t *testing.T) {
	s, fatP, thinP := heteroSession(t, "capacity-fit")
	tm := s.TaskManager()
	tm.AddPilot(fatP)
	tm.AddPilot(thinP)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var descs []spec.TaskDescription
	for i := 0; i < 4; i++ { // two per fat node over two rounds
		descs = append(descs, spec.TaskDescription{
			Name: "large", Cores: 64, GPUs: 8, Duration: rng.ConstDuration(2 * time.Second),
		})
	}
	for i := 0; i < 4; i++ {
		descs = append(descs, spec.TaskDescription{
			Name: "small", Cores: 16, Duration: rng.ConstDuration(2 * time.Second),
		})
	}
	tasks, err := tm.Submit(ctx, descs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Wait(ctx, tasks...); err != nil {
		t.Fatalf("capacity-fit left shape-constrained work unfinished: %v", err)
	}
	for _, task := range tasks {
		if task.State() != states.TaskDone {
			t.Fatalf("task %s = %s", task.UID(), task.State())
		}
		if task.Description().Name == "large" && task.Pilot() != fatP.UID() {
			t.Fatalf("large task bound to %s, want fat pilot %s", task.Pilot(), fatP.UID())
		}
	}

	// A task no pilot's shapes could ever fit is rejected at submit.
	_, err = tm.Submit(ctx, spec.TaskDescription{Name: "monster", Cores: 1024})
	var unroutable router.ErrUnroutable
	if !errors.As(err, &unroutable) {
		t.Fatalf("unroutable submit error = %v, want router.ErrUnroutable", err)
	}
}

// TestRerouteOnPilotShutdown is the regression pin for late-binding
// failure recovery: a task queued (never granted) on a pilot that shuts
// down is re-routed to another active pilot and completes there.
func TestRerouteOnPilotShutdown(t *testing.T) {
	s := newSession(t, 100000)
	tm := s.TaskManager()
	a, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm.AddPilot(a)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Saturate pilot A, then queue a task behind the holder.
	holder, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "holder", Cores: 64, Duration: rng.ConstDuration(1000 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, holder[0], states.TaskExecuting)
	queued, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "queued", Cores: 64, Duration: rng.ConstDuration(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, queued[0], states.TaskScheduling)

	// Attach a second pilot, then kill the first: the queued task must
	// follow the capacity.
	b, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm.AddPilot(b)
	if err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := tm.Wait(ctx, queued[0]); err != nil {
		t.Fatalf("re-routed task failed: %v", err)
	}
	if queued[0].State() != states.TaskDone {
		t.Fatalf("re-routed task = %s", queued[0].State())
	}
	if queued[0].Pilot() != b.UID() {
		t.Fatalf("re-routed task on %s, want %s", queued[0].Pilot(), b.UID())
	}
	if queued[0].Reroutes() != 1 {
		t.Fatalf("reroutes = %d, want 1", queued[0].Reroutes())
	}
}

// TestOverflowPoolHoldsTasksUntilCapacityArrives: with no surviving
// pilot, a re-routable task parks in the session overflow pool and binds
// late — to the next pilot attached.
func TestOverflowPoolHoldsTasksUntilCapacityArrives(t *testing.T) {
	s := newSession(t, 100000)
	tm := s.TaskManager()
	a, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm.AddPilot(a)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	holder, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "holder", Cores: 64, Duration: rng.ConstDuration(1000 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, holder[0], states.TaskExecuting)
	queued, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "queued", Cores: 8, Duration: rng.ConstDuration(2 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, queued[0], states.TaskScheduling)
	if err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// No active pilot: the task must land in the overflow pool, reported
	// as session-held.
	deadline := time.Now().Add(10 * time.Second)
	for tm.Overflow() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("overflow = %d, want 1", tm.Overflow())
		}
		time.Sleep(time.Millisecond)
	}
	if st := queued[0].State(); st != states.TaskTmgrScheduling {
		t.Fatalf("pooled task state = %s, want %s", st, states.TaskTmgrScheduling)
	}

	b, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm.AddPilot(b)
	if err := tm.Wait(ctx, queued[0]); err != nil {
		t.Fatalf("late-bound task failed: %v", err)
	}
	if tm.Overflow() != 0 {
		t.Fatalf("overflow not drained: %d", tm.Overflow())
	}
	if queued[0].Pilot() != b.UID() {
		t.Fatalf("late-bound task on %s, want %s", queued[0].Pilot(), b.UID())
	}
}

// TestWaitDeadPilotErrorPath pins the Wait error path for tasks owned by
// a dead pilot: a task pinned to a pilot is not re-routed, so when the
// pilot shuts down first the task fails with pilot.ErrPilotStopped and
// Wait surfaces it.
func TestWaitDeadPilotErrorPath(t *testing.T) {
	s := newSession(t, 100000)
	tm := s.TaskManager()
	a, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm.AddPilot(a)
	tm.AddPilot(b)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	holder, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "holder", Pilot: a.UID(), Cores: 64, Duration: rng.ConstDuration(1000 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, holder[0], states.TaskExecuting)
	pinned, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "pinned", Pilot: a.UID(), Cores: 64, Duration: rng.ConstDuration(time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, pinned[0], states.TaskScheduling)
	if err := a.Shutdown(); err != nil {
		t.Fatal(err)
	}
	err = tm.Wait(ctx, pinned[0])
	if !errors.Is(err, pilot.ErrPilotStopped) {
		t.Fatalf("Wait error = %v, want pilot.ErrPilotStopped", err)
	}
	if pinned[0].State() != states.TaskFailed {
		t.Fatalf("pinned task = %s, want FAILED", pinned[0].State())
	}
	if pinned[0].Reroutes() != 0 {
		t.Fatalf("pinned task re-routed %d times", pinned[0].Reroutes())
	}
	// Submitting to the dead pilot by pin is rejected outright.
	if _, err := tm.Submit(ctx, spec.TaskDescription{
		Name: "late", Pilot: a.UID(), Cores: 1, Duration: rng.ConstDuration(time.Second),
	}); err == nil {
		t.Fatal("Submit accepted a task pinned to a dead pilot")
	}
}

// waitState polls a session task into a wanted state.
func waitState(t *testing.T, task *Task, want states.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for task.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("task %s stuck in %s, want %s", task.UID(), task.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOverflowDrainRankedByRouter pins the drain-order satellite: when a
// new pilot attaches, a capacity-fit session drains the overflow pool
// through the router's own ranking — fits-now tasks first — while blind
// routers keep submission order. The scenario makes the order observable
// through strict head-of-line blocking: the new pilot has 16 free cores,
// the pool holds [big (64c), small (8c)] in submission order. Draining
// big first wedges both behind an ungrantable head; draining small first
// lets it run immediately.
func TestOverflowDrainRankedByRouter(t *testing.T) {
	run := func(t *testing.T, rt string) (*Task, *Task, *pilot.Pilot) {
		t.Helper()
		s, err := NewSession(SessionConfig{
			Seed:   42,
			Clock:  simtime.NewScaled(100000, DefaultOrigin),
			Router: rt,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		tm := s.TaskManager()
		a, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		tm.AddPilot(a)
		ctx := context.Background()

		// Saturate pilot A so big and small queue behind the holder, then
		// kill A: both park in the overflow pool in submission order.
		holder, err := tm.Submit(ctx, spec.TaskDescription{
			Name: "holder", Cores: 64, Duration: rng.ConstDuration(1000 * time.Hour),
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, holder[0], states.TaskExecuting)
		big, err := tm.Submit(ctx, spec.TaskDescription{
			Name: "big", Cores: 64, Duration: rng.ConstDuration(time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		small, err := tm.Submit(ctx, spec.TaskDescription{
			Name: "small", Cores: 8, Duration: rng.ConstDuration(time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, big[0], states.TaskScheduling)
		waitState(t, small[0], states.TaskScheduling)
		if err := a.Shutdown(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for tm.Overflow() != 2 {
			if time.Now().After(deadline) {
				t.Fatalf("overflow = %d, want 2", tm.Overflow())
			}
			time.Sleep(time.Millisecond)
		}

		// Pilot B arrives with only 16 cores free: a direct holder keeps
		// 48 occupied, so big can never start while it lives.
		b, err := s.PilotManager().Submit(spec.PilotDescription{Platform: "delta", Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		bHold, err := b.SubmitTask(ctx, spec.TaskDescription{
			Name: "b-holder", Cores: 48, Duration: rng.ConstDuration(1000 * time.Hour),
		})
		if err != nil {
			t.Fatal(err)
		}
		deadline = time.Now().Add(10 * time.Second)
		for bHold.State() != states.TaskExecuting {
			if time.Now().After(deadline) {
				t.Fatalf("b-holder stuck in %s", bHold.State())
			}
			time.Sleep(time.Millisecond)
		}
		tm.AddPilot(b)
		return big[0], small[0], b
	}

	t.Run("capacity-fit-ranks-fits-now-first", func(t *testing.T) {
		big, small, b := run(t, "capacity-fit")
		// small drained first: it runs to completion on B's free cores
		// while big queues behind the occupied node.
		select {
		case <-small.Done():
		case <-time.After(15 * time.Second):
			t.Fatalf("small never completed (state %s) — drained behind the blocked big?", small.State())
		}
		if err := small.Err(); err != nil {
			t.Fatal(err)
		}
		if small.Pilot() != b.UID() {
			t.Fatalf("small on %s, want %s", small.Pilot(), b.UID())
		}
		if st := big.State(); st != states.TaskScheduling {
			t.Fatalf("big state = %s, want queued %s", st, states.TaskScheduling)
		}
	})
	t.Run("round-robin-keeps-submission-order", func(t *testing.T) {
		big, small, _ := run(t, "round-robin")
		// big drained first and wedged at the strict head: small stays
		// blocked behind it — the seed drain semantics, untouched.
		select {
		case <-small.Done():
			t.Fatalf("small completed under round-robin drain (err %v) — submission order not preserved?", small.Err())
		case <-time.After(250 * time.Millisecond):
		}
		if st := small.State(); st != states.TaskScheduling {
			t.Fatalf("small state = %s, want queued", st)
		}
		if st := big.State(); st != states.TaskScheduling {
			t.Fatalf("big state = %s, want queued", st)
		}
	})
}

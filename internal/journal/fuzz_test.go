package journal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRecord exercises the record decoder against arbitrary byte
// streams: it must never panic, and any record it accepts must re-encode
// to a frame that decodes back to the same record.
func FuzzDecodeRecord(f *testing.F) {
	// Seed corpus: valid frames for each record kind, plus torn and
	// corrupt variants.
	seed := func(kind Kind, body any) []byte {
		raw, err := json.Marshal(body)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		frame, err := EncodeRecord(Record{Kind: kind, Seq: 1, Body: raw})
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		return frame
	}
	f.Add(seed(KindSession, SessionBody{UID: "session.0001", Seed: 42, Incarnation: 1}))
	f.Add(seed(KindTransition, TransitionBody{Entity: "task", UID: "t1", From: "NEW", To: "TMGR_SCHEDULING"}))
	f.Add(seed(KindBind, BindBody{Entity: "task", UID: "t1", Pilot: "p1"}))
	f.Add(seed(KindEndpoint, EndpointBody{Op: OpPublish, UID: "s1", Generation: 3}))
	full := seed(KindSession, SessionBody{UID: "s"})
	f.Add(full[:len(full)/2])             // torn frame
	f.Add([]byte{})                       // empty
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0}) // bad checksum
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized prefix, short header
	corrupt := append([]byte{}, full...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt) // checksum mismatch on real payload

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode accepted record: %v", err)
		}
		rec2, n2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if n2 != len(re) || rec2.Kind != rec.Kind || rec2.Seq != rec.Seq ||
			!bytes.Equal(rec2.Body, rec.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}

// Signature Detection (paper §II-B): VEP-style annotation of 15 VCF
// samples runs concurrently, pathway enrichment follows, dose-response
// integration produces CSV outputs, and an LLM service compares the
// resulting signatures — the service-based stage the paper's Table I marks
// "Enable as Service: Yes".
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/usecases"
	"repro/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "signature: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:  11,
		Clock: simtime.NewScaled(20000, core.DefaultOrigin),
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	p, err := sess.PilotManager().Submit(spec.PilotDescription{
		Platform: "delta", Cores: 256, GPUs: 16,
	})
	if err != nil {
		return err
	}
	runner, err := workflow.NewRunner(sess, p)
	if err != nil {
		return err
	}

	coll := metrics.NewCollector()
	res := &usecases.SignatureResults{}
	pipe := usecases.Signature(usecases.SignatureConfig{
		UseLLM:     true,
		LLMQueries: 4,
		Collector:  coll,
		Compute:    true, // real annotation/enrichment/regression on synthetic data
		Results:    res,
	}, sess.RNG())

	fmt.Println("running Signature Detection pipeline (use case II-B): 15 VCF samples ...")
	rep, err := runner.Run(context.Background(), pipe)
	if err != nil {
		return err
	}

	stages := append([]workflow.StageReport{}, rep.Stages...)
	sort.Slice(stages, func(i, j int) bool { return stages[i].Started.Before(stages[j].Started) })
	for _, s := range stages {
		fmt.Printf("  stage %-26s tasks=%-3d services=%d duration=%s\n",
			s.Stage, s.Tasks, s.Services, s.Duration().Round(time.Second))
	}
	fmt.Printf("pipeline finished in %s simulated\n", rep.Duration().Round(time.Second))

	if n := coll.Count("sig.llm.inference"); n > 0 {
		fmt.Printf("LLM comparison: %d inferences, inference time %s\n",
			n, coll.Stats("sig.llm.inference"))
		fmt.Printf("  communication %s\n", coll.Stats("sig.llm.communication"))
	}
	if obj, ok := p.Stage().Lookup("delta:/results/sig/dose-response.csv"); ok {
		fmt.Printf("dose-response output staged: %s (%d bytes)\n", obj.URI, obj.Bytes)
	}
	fit := res.DoseFit()
	fmt.Printf("dose-response fit: slope=%.2f hits/Gy intercept=%.2f R²=%.3f\n",
		fit.Slope, fit.Intercept, fit.R2)
	if top, ok := res.TopPathway(14); ok {
		fmt.Printf("highest-dose sample's top pathway: %s (overlap %d, p=%.2g)\n",
			top.Pathway, top.Overlap, top.PValue)
	}
	return nil
}

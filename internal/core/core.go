// Package core is the client-facing runtime facade — the analogue of
// RADICAL-Pilot's client layer extended with the paper's service
// capabilities. A Session owns the clock, RNG, platform topology,
// communication network and metrics; a PilotManager acquires pilots; a
// TaskManager and a ServiceManager submit TaskDescriptions and
// ServiceDescriptions through one unified API (Fig. 2 (1)); an Updater
// publishes every entity state transition on a dedicated channel
// (Fig. 2 (6)). Remote (e.g. R3-hosted) services register their endpoints
// directly with the session, so client tasks consume local and remote
// model instances through the same interface.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/loadbal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/proto"
	"repro/internal/restapi"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// DefaultOrigin is the simulated epoch used when no clock is supplied.
var DefaultOrigin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

// UpdatesAddr is the session-level PUB endpoint for state updates.
const UpdatesAddr = "session//updates"

// SessionConfig parameterizes a Session.
type SessionConfig struct {
	// Seed drives all stochastic behaviour; the same seed replays the
	// same run.
	Seed uint64
	// Clock defaults to a 1000x scaled clock at DefaultOrigin.
	Clock simtime.Clock
	// Topology defaults to the full catalog topology: the paper's three
	// platforms (frontier, delta, r3) plus the mixed-shape hetero campus.
	Topology *platform.Topology
	// FastBoot zeroes pilot boot, launch and publish overheads. Use for
	// runs that measure steady-state behaviour (the paper's Exp 2/3, where
	// bootstrap is out of scope) on low clock scales where those sleeps
	// would cost real wall time.
	FastBoot bool
	// SchedPolicy names the placement policy every pilot's agent
	// scheduler uses ("strict", "backfill", "best-fit"). Empty defers to
	// the platform's default, then to strict.
	SchedPolicy string
}

// Session is one runtime instance.
type Session struct {
	uid   string
	clock simtime.Clock
	src   *rng.Source
	topo  *platform.Topology
	net   *msgq.Network
	coll  *metrics.Collector
	prof  *profile.Recorder

	updates msgq.Publisher

	mu       sync.Mutex
	closed   bool
	remotes  map[string]proto.Endpoint
	fastBoot bool
	schedPol string

	pm *PilotManager
	tm *TaskManager
	sm *ServiceManager
}

// NewSession assembles a runtime session.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Clock == nil {
		cfg.Clock = simtime.NewScaled(1000, DefaultOrigin)
	}
	if cfg.Topology == nil {
		cfg.Topology = platform.DefaultTopology()
	}
	// Fail fast on a bad policy name instead of at the first pilot launch.
	if _, err := scheduler.PolicyByName(cfg.SchedPolicy); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	net := msgq.NewNetwork(cfg.Clock, src.Derive("net"), cfg.Topology.Resolver())
	s := &Session{
		uid:      fmt.Sprintf("session.%08x", src.Derive("uid").Uint64()&0xffffffff),
		clock:    cfg.Clock,
		src:      src,
		topo:     cfg.Topology,
		net:      net,
		coll:     metrics.NewCollector(),
		prof:     profile.NewRecorder(),
		remotes:  make(map[string]proto.Endpoint),
		fastBoot: cfg.FastBoot,
		schedPol: cfg.SchedPolicy,
	}
	pub, err := net.BindPub(UpdatesAddr)
	if err != nil {
		net.Close()
		return nil, err
	}
	s.updates = pub
	s.pm = &PilotManager{sess: s, pilots: make(map[string]*pilot.Pilot)}
	s.tm = &TaskManager{sess: s}
	s.sm = &ServiceManager{sess: s, owner: make(map[string]*pilot.Pilot)}
	return s, nil
}

// UID returns the session identifier.
func (s *Session) UID() string { return s.uid }

// Clock returns the session clock.
func (s *Session) Clock() simtime.Clock { return s.clock }

// RNG returns the session's root RNG source.
func (s *Session) RNG() *rng.Source { return s.src }

// Network returns the session's communication network.
func (s *Session) Network() *msgq.Network { return s.net }

// Topology returns the platform topology.
func (s *Session) Topology() *platform.Topology { return s.topo }

// Metrics returns the session-wide metrics collector.
func (s *Session) Metrics() *metrics.Collector { return s.coll }

// Profile returns the session profile recorder (the RADICAL-Analytics
// analogue): every entity state transition is recorded with its clock
// timestamp and can be exported as CSV.
func (s *Session) Profile() *profile.Recorder { return s.prof }

// PilotManager returns the session's pilot manager.
func (s *Session) PilotManager() *PilotManager { return s.pm }

// TaskManager returns the session's task manager.
func (s *Session) TaskManager() *TaskManager { return s.tm }

// ServiceManager returns the session's service manager.
func (s *Session) ServiceManager() *ServiceManager { return s.sm }

// SubscribeUpdates attaches to the Updater's state-update channel,
// optionally filtered by entity topics ("pilot", "task", "service").
func (s *Session) SubscribeUpdates(buffer int, topics ...string) (*msgq.Subscription, error) {
	return s.net.Subscribe("client", UpdatesAddr, buffer, topics...)
}

// publishState is the Updater: it broadcasts one state transition on the
// session's update channel and records it in the session profile.
func (s *Session) publishState(entity string) states.Callback {
	record := s.prof.Callback(entity)
	return func(uid string, from, to states.State, at time.Time) {
		record(uid, from, to, at)
		env, err := proto.NewEnvelope(proto.KindStateUpdate, 0, uid, "", at, proto.StateUpdate{
			EntityUID: uid, Entity: entity, State: string(to), At: at,
		})
		if err != nil {
			return
		}
		s.updates.Publish(entity, env)
	}
}

// RegisterRemote adds a remote (externally managed, e.g. R3-hosted)
// service endpoint to the session. Remote models "are usually persistent
// on dedicated resources and do not need to be bootstrapped" (§IV).
func (s *Session) RegisterRemote(ep proto.Endpoint) {
	s.mu.Lock()
	s.remotes[ep.ServiceUID] = ep
	s.mu.Unlock()
}

// RemoteEndpoints returns registered remote endpoints (all models when
// model is empty).
func (s *Session) RemoteEndpoints(model string) []proto.Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []proto.Endpoint
	for _, ep := range s.remotes {
		if model == "" || ep.Model == model {
			out = append(out, ep)
		}
	}
	sortEndpoints(out)
	return out
}

// Dial connects a client address to a service endpoint, dispatching on
// the endpoint protocol: msgq endpoints get an in-network client, REST
// endpoints (remote R3-style deployments) get an HTTP-backed caller. Both
// satisfy service.Caller, so client tasks are agnostic to locality.
func (s *Session) Dial(clientAddr string, ep proto.Endpoint) (service.Caller, error) {
	if ep.Protocol == "rest" {
		return restapi.NewCaller(ep, s.clock)
	}
	return service.Dial(s.net, s.clock, clientAddr, ep)
}

// Pool returns a load-balanced Caller over all endpoints of model,
// re-resolved per request across local pilots and remote registrations.
func (s *Session) Pool(clientAddr, model string, bal loadbal.Balancer) (*service.Pool, error) {
	return service.NewPool(s.net, s.clock, clientAddr, bal, func() []proto.Endpoint {
		return s.sm.Endpoints(model)
	})
}

// Close shuts the session down: pilots, services, network.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.pm.shutdownAll()
	s.net.Close()
}

func sortEndpoints(eps []proto.Endpoint) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && eps[j].ServiceUID < eps[j-1].ServiceUID; j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

// --- PilotManager -----------------------------------------------------------

// PilotManager acquires and tracks pilots.
type PilotManager struct {
	sess *Session

	mu     sync.Mutex
	seq    int
	pilots map[string]*pilot.Pilot
}

// Submit launches a pilot on the described platform.
func (pm *PilotManager) Submit(desc spec.PilotDescription) (*pilot.Pilot, error) {
	plat := pm.sess.topo.Platform(desc.Platform)
	if plat == nil {
		return nil, fmt.Errorf("core: unknown platform %q", desc.Platform)
	}
	pm.mu.Lock()
	pm.seq++
	seq := pm.seq
	pm.mu.Unlock()
	if desc.UID == "" {
		desc.UID = fmt.Sprintf("pilot.%s.%04d", desc.Platform, seq)
	}
	cfg := pilot.Config{
		Clock:         pm.sess.clock,
		Src:           pm.sess.src.Derive(fmt.Sprintf("pilot.%s.%d", desc.Platform, seq)),
		Net:           pm.sess.net,
		Platform:      plat,
		SchedPolicy:   pm.sess.schedPol,
		StateCallback: pm.sess.publishState("task"),
	}
	if pm.sess.fastBoot {
		cfg.BootTime = rng.ConstDuration(0)
		cfg.PublishOverhead = rng.ConstDuration(0)
		cfg.LaunchModel = &platform.LaunchModel{}
	}
	p, err := pilot.Launch(cfg, desc)
	if err != nil {
		return nil, err
	}
	pm.mu.Lock()
	pm.pilots[p.UID()] = p
	pm.mu.Unlock()
	return p, nil
}

// Get returns a pilot by UID.
func (pm *PilotManager) Get(uid string) (*pilot.Pilot, bool) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	p, ok := pm.pilots[uid]
	return p, ok
}

// List returns all pilots.
func (pm *PilotManager) List() []*pilot.Pilot {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	out := make([]*pilot.Pilot, 0, len(pm.pilots))
	for _, p := range pm.pilots {
		out = append(out, p)
	}
	return out
}

func (pm *PilotManager) shutdownAll() {
	for _, p := range pm.List() {
		if p.State() == states.PilotActive {
			_ = p.Shutdown()
		}
	}
}

// --- TaskManager -------------------------------------------------------------

// TaskManager submits compute tasks across the session's pilots.
type TaskManager struct {
	sess *Session

	mu     sync.Mutex
	pilots []*pilot.Pilot
	rr     int
	owner  sync.Map // task UID → *pilot.Pilot
}

// AddPilot attaches a pilot to the task manager.
func (tm *TaskManager) AddPilot(p *pilot.Pilot) {
	tm.mu.Lock()
	tm.pilots = append(tm.pilots, p)
	tm.mu.Unlock()
}

// Submit dispatches descriptions round-robin over attached pilots.
func (tm *TaskManager) Submit(ctx context.Context, descs ...spec.TaskDescription) ([]*pilot.Task, error) {
	tm.mu.Lock()
	if len(tm.pilots) == 0 {
		tm.mu.Unlock()
		return nil, errors.New("core: task manager has no pilots")
	}
	pilots := append([]*pilot.Pilot{}, tm.pilots...)
	start := tm.rr
	tm.rr += len(descs)
	tm.mu.Unlock()

	tasks := make([]*pilot.Task, 0, len(descs))
	for i, d := range descs {
		p := pilots[(start+i)%len(pilots)]
		t, err := p.SubmitTask(ctx, d)
		if err != nil {
			return tasks, err
		}
		tm.owner.Store(t.UID(), p)
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// Wait blocks until the listed tasks finish; with none listed it waits for
// every task on every attached pilot.
func (tm *TaskManager) Wait(ctx context.Context, tasks ...*pilot.Task) error {
	if len(tasks) == 0 {
		tm.mu.Lock()
		pilots := append([]*pilot.Pilot{}, tm.pilots...)
		tm.mu.Unlock()
		for _, p := range pilots {
			if err := p.WaitTasks(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	var firstErr error
	for _, t := range tasks {
		v, ok := tm.owner.Load(t.UID())
		if !ok {
			return fmt.Errorf("core: task %s not owned by this manager", t.UID())
		}
		if err := v.(*pilot.Pilot).WaitTasks(ctx, t.UID()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- ServiceManager -----------------------------------------------------------

// ServiceManager submits service tasks across pilots and aggregates
// endpoint discovery over local pilots and remote registrations.
type ServiceManager struct {
	sess *Session

	mu     sync.Mutex
	pilots []*pilot.Pilot
	rr     int
	owner  map[string]*pilot.Pilot // service UID → hosting pilot
}

// AddPilot attaches a pilot to the service manager.
func (sm *ServiceManager) AddPilot(p *pilot.Pilot) {
	sm.mu.Lock()
	sm.pilots = append(sm.pilots, p)
	sm.mu.Unlock()
}

// Submit dispatches one service description to the next pilot.
func (sm *ServiceManager) Submit(d spec.ServiceDescription) (*service.Instance, error) {
	sm.mu.Lock()
	if len(sm.pilots) == 0 {
		sm.mu.Unlock()
		return nil, errors.New("core: service manager has no pilots")
	}
	p := sm.pilots[sm.rr%len(sm.pilots)]
	sm.rr++
	sm.mu.Unlock()

	inst, err := p.Services().Submit(d)
	if err != nil {
		return nil, err
	}
	sm.mu.Lock()
	sm.owner[inst.UID()] = p
	sm.mu.Unlock()
	return inst, nil
}

// WaitReady blocks until the listed services are ACTIVE.
func (sm *ServiceManager) WaitReady(ctx context.Context, uids ...string) error {
	for _, uid := range uids {
		sm.mu.Lock()
		p, ok := sm.owner[uid]
		sm.mu.Unlock()
		if !ok {
			return fmt.Errorf("core: service %s not owned by this manager", uid)
		}
		if err := p.Services().WaitReady(ctx, uid); err != nil {
			return err
		}
	}
	return nil
}

// Terminate stops a managed service.
func (sm *ServiceManager) Terminate(uid string, drain bool) error {
	sm.mu.Lock()
	p, ok := sm.owner[uid]
	sm.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: service %s not owned by this manager", uid)
	}
	return p.Services().Terminate(uid, drain)
}

// Get returns a managed instance.
func (sm *ServiceManager) Get(uid string) (*service.Instance, bool) {
	sm.mu.Lock()
	p, ok := sm.owner[uid]
	sm.mu.Unlock()
	if !ok {
		return nil, false
	}
	return p.Services().Get(uid)
}

// Endpoints returns every known endpoint for model (local pilots plus
// remote registrations), in deterministic order.
func (sm *ServiceManager) Endpoints(model string) []proto.Endpoint {
	sm.mu.Lock()
	pilots := append([]*pilot.Pilot{}, sm.pilots...)
	sm.mu.Unlock()
	var out []proto.Endpoint
	for _, p := range pilots {
		out = append(out, p.Registry().ByModel(model)...)
	}
	out = append(out, sm.sess.RemoteEndpoints(model)...)
	sortEndpoints(out)
	return out
}

// QueueDepth reports a managed service's live queue depth (remote
// endpoints report 0: their depth is not observable from the client side).
func (sm *ServiceManager) QueueDepth(uid string) int {
	if inst, ok := sm.Get(uid); ok {
		return inst.QueueDepth()
	}
	return 0
}

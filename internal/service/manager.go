// Package service implements the paper's central contribution: the
// service-oriented runtime extension. It provides the ServiceManager that
// complements the existing TaskManager (Fig. 2), the Service base
// behaviour (a managed process exposing a well-defined API with readiness
// and liveness management), endpoint publication, control channels, and
// the priority relation that starts services before compute tasks.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/executor"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/platform"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scheduler"
	"repro/internal/serving"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/stager"
	"repro/internal/states"
)

// Manager errors.
var (
	ErrUnknownService = errors.New("service: unknown service")
	ErrNotActive      = errors.New("service: not active")
	// ErrHostStopped marks a service that failed because its hosting pilot
	// stopped underneath it (scheduler closed, or the pilot's stop channel
	// fired while the service waited for placement). The session-level
	// ServiceManager treats it — together with the pilot's own stop signal
	// — as the trigger for failure-driven re-placement.
	ErrHostStopped = errors.New("service: hosting pilot stopped")
)

// Config wires a Manager into a pilot agent.
type Config struct {
	Clock    simtime.Clock
	Src      *rng.Source
	Net      *msgq.Network
	Sched    *scheduler.Scheduler
	Router   *scheduler.Router
	Exec     *executor.Executor
	Stage    *stager.Manager
	Registry *Registry
	// OnPublish, when set, observes every endpoint publication as part of
	// the publish bootstrap phase — after the endpoint lands in the pilot
	// Registry and strictly before the service turns ACTIVE. The session
	// hooks its EndpointRegistry mirror here, so a service that reports
	// ready is already resolvable session-wide (and a failover
	// re-bootstrap re-publishes with a bumped generation atomically with
	// the new instance's activation).
	OnPublish func(proto.Endpoint)
	// Stopped, when set, is closed when the hosting pilot shuts down.
	// Services still waiting for placement observe it and fail fast with
	// ErrHostStopped instead of sitting out their start timeout on a dead
	// scheduler — the same fast-fail contract pilot tasks get from the
	// pilot's stopped channel.
	Stopped <-chan struct{}
	// Platform is the hosting platform's name (address prefix).
	Platform string
	// UIDPrefix namespaces generated service UIDs (e.g. the owning pilot
	// UID) so services of different pilots never collide in session-level
	// maps and transport addresses.
	UIDPrefix string
	// DefaultProbeInterval is used when a description leaves ProbeInterval
	// zero. Default 5s.
	DefaultProbeInterval time.Duration
	// DefaultStartTimeout bounds bootstrap when a description leaves
	// StartTimeout zero. Default 10m.
	DefaultStartTimeout time.Duration
	// StateCallback, when set, observes every committed service state
	// transition (registered on each instance machine at submission). The
	// session hooks its state Updater and journal here.
	StateCallback states.Callback
	// Transport selects the msgq transport service endpoints bind on
	// (msgq.TransportInproc / msgq.TransportTCP; empty = the network's
	// default). Over TCP, published endpoint addresses take the dialable
	// "tcp://host:port" form so clients in other processes can reach the
	// service directly.
	Transport string
}

// Manager is the ServiceManager: it owns the lifecycle of every service
// task on one pilot.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	seq      int
	services map[string]*Instance
	closed   bool
}

// NewManager validates cfg and returns an empty Manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Clock == nil || cfg.Src == nil || cfg.Net == nil || cfg.Sched == nil ||
		cfg.Router == nil || cfg.Exec == nil || cfg.Registry == nil {
		return nil, errors.New("service: incomplete manager config")
	}
	if cfg.DefaultProbeInterval <= 0 {
		cfg.DefaultProbeInterval = 5 * time.Second
	}
	if cfg.DefaultStartTimeout <= 0 {
		cfg.DefaultStartTimeout = 10 * time.Minute
	}
	return &Manager{cfg: cfg, services: make(map[string]*Instance)}, nil
}

// Instance is one managed service task.
type Instance struct {
	desc    spec.ServiceDescription
	machine *states.Machine
	mgr     *Manager

	mu        sync.Mutex
	server    *serving.Server
	endpoint  proto.Endpoint
	alloc     interface{ Release() }
	apiSrv    msgq.Server
	ctlSrv    msgq.Server
	probe     simtime.Ticker
	probeStop chan struct{}
	killed    bool
	failErr   error

	// bootstrap components (Fig. 3)
	launchTime  time.Duration
	initTime    time.Duration
	publishTime time.Duration
}

// UID returns the service UID.
func (s *Instance) UID() string { return s.machine.UID() }

// Description returns the submitted description.
func (s *Instance) Description() spec.ServiceDescription { return s.desc }

// State returns the current lifecycle state.
func (s *Instance) State() states.State { return s.machine.Current() }

// Endpoint returns the published endpoint (zero before publication).
func (s *Instance) Endpoint() proto.Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.endpoint
}

// Err returns the failure cause, if the service failed.
func (s *Instance) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failErr
}

// Final reports whether the instance reached a final lifecycle state.
func (s *Instance) Final() bool { return s.machine.IsFinal() }

// Changed returns a channel that fires on the instance's next state
// transition. Watchers must re-check state after registering (the usual
// lost-wakeup re-check), exactly like states.Machine.WaitChan.
func (s *Instance) Changed() <-chan states.State { return s.machine.WaitChan() }

// Bootstrap returns the measured BT components: launch (placement to
// process up), init (model load), publish (endpoint communication). Valid
// once the service is ACTIVE.
func (s *Instance) Bootstrap() metrics.Breakdown {
	s.mu.Lock()
	defer s.mu.Unlock()
	return metrics.Breakdown{Components: map[string]time.Duration{
		"launch":  s.launchTime,
		"init":    s.initTime,
		"publish": s.publishTime,
	}}
}

// QueueDepth returns the server's live queue depth — queued plus
// executing requests (0 when not active).
func (s *Instance) QueueDepth() int {
	s.mu.Lock()
	srv := s.server
	s.mu.Unlock()
	if srv == nil {
		return 0
	}
	return srv.QueueDepth()
}

// Queued returns requests admitted to the server's queue but not yet
// being executed (0 when not active) — the backlog signal autoscaling
// and balancing read.
func (s *Instance) Queued() int {
	s.mu.Lock()
	srv := s.server
	s.mu.Unlock()
	if srv == nil {
		return 0
	}
	return srv.Queued()
}

// InFlight returns requests the server is currently executing (0 when
// not active).
func (s *Instance) InFlight() int {
	s.mu.Lock()
	srv := s.server
	s.mu.Unlock()
	if srv == nil {
		return 0
	}
	return srv.InFlight()
}

// Processed returns the number of requests the instance's server completed
// (0 when not active).
func (s *Instance) Processed() int64 {
	s.mu.Lock()
	srv := s.server
	s.mu.Unlock()
	if srv == nil {
		return 0
	}
	return srv.Processed()
}

// Deduped returns the number of requests the instance's server answered
// from its completed-request memory instead of re-executing (0 when not
// active).
func (s *Instance) Deduped() int64 {
	s.mu.Lock()
	srv := s.server
	s.mu.Unlock()
	if srv == nil {
		return 0
	}
	return srv.Deduped()
}

// Kill simulates a service process crash: the backend stops answering, so
// the next liveness probe marks the service FAILED. Used by failure
// injection tests.
func (s *Instance) Kill() {
	s.mu.Lock()
	s.killed = true
	srv := s.server
	s.mu.Unlock()
	if srv != nil {
		srv.Stop()
	}
}

// Submit validates d, assigns a UID, and starts the service bootstrap
// asynchronously. The returned Instance progresses through the service
// state model; use Manager.WaitReady or the Registry to gate on readiness.
func (m *Manager) Submit(d spec.ServiceDescription) (*Instance, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("service: manager closed")
	}
	m.seq++
	if d.UID == "" {
		d.UID = fmt.Sprintf("%sservice.%04d", m.cfg.UIDPrefix, m.seq)
	}
	if d.Priority == 0 {
		d.Priority = spec.ServicePriority
	}
	if d.ProbeInterval <= 0 {
		d.ProbeInterval = m.cfg.DefaultProbeInterval
	}
	if d.StartTimeout <= 0 {
		d.StartTimeout = m.cfg.DefaultStartTimeout
	}
	inst := &Instance{
		desc:      d,
		machine:   states.NewMachine(d.UID, states.ServiceModel(), m.cfg.Clock),
		mgr:       m,
		probeStop: make(chan struct{}),
	}
	if m.cfg.StateCallback != nil {
		inst.machine.OnTransition(m.cfg.StateCallback)
	}
	m.services[d.UID] = inst
	m.mu.Unlock()

	// Register the bootstrap goroutine with a runnability-accounting clock
	// (the clock.Go rule): mid-session service spawns — the autoscaler's
	// replicas — sleep for real model-load time, and an unregistered
	// sleeper would let the auto-advancing clock move time while the
	// bootstrap is still runnable, destroying determinism. On real/scaled
	// clocks RunnersOf is nil and this is a plain goroutine as before.
	if run := simtime.RunnersOf(m.cfg.Clock); run != nil {
		run.AddRunner()
		go func() {
			defer run.DoneRunner()
			m.bootstrap(inst)
		}()
	} else {
		go m.bootstrap(inst)
	}
	return inst, nil
}

// Get returns a managed instance.
func (m *Manager) Get(uid string) (*Instance, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.services[uid]
	return s, ok
}

// List returns all managed instances.
func (m *Manager) List() []*Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Instance, 0, len(m.services))
	for _, s := range m.services {
		out = append(out, s)
	}
	return out
}

// bootstrap drives one service task through its lifecycle until ACTIVE.
func (m *Manager) bootstrap(inst *Instance) {
	fail := func(err error) {
		inst.mu.Lock()
		inst.failErr = err
		alloc := inst.alloc
		inst.alloc = nil
		inst.mu.Unlock()
		_ = inst.machine.Fail()
		if alloc != nil {
			alloc.Release()
		}
		m.cfg.Registry.Withdraw(inst.UID())
	}

	d := inst.desc
	if err := inst.machine.To(states.ServiceSmgrScheduling); err != nil {
		fail(err)
		return
	}

	// input staging
	if err := inst.machine.To(states.ServiceStagingInput); err != nil {
		fail(err)
		return
	}
	if m.cfg.Stage != nil && len(d.InputStaging) > 0 {
		if _, err := m.cfg.Stage.StageAll(d.InputStaging); err != nil {
			fail(err)
			return
		}
	}

	// agent scheduling: services carry raised priority
	if err := inst.machine.To(states.ServiceScheduling); err != nil {
		fail(err)
		return
	}
	placed := m.cfg.Router.Expect(d.UID)
	err := m.cfg.Sched.Submit(scheduler.Request{
		UID: d.UID, Cores: d.Cores, GPUs: d.GPUs, MemGB: d.MemGB, Priority: d.Priority,
	})
	if err != nil {
		m.cfg.Router.Cancel(d.UID)
		if errors.Is(err, scheduler.ErrClosed) {
			// The scheduler shut down between submission and enqueue: the
			// pilot is stopping, not the service misbehaving.
			err = fmt.Errorf("%w: %v", ErrHostStopped, err)
		}
		fail(err)
		return
	}

	// abandon cancels the placement expectation; if a grant is already
	// committed (Cancel finds no waiter), exactly one placement is in
	// flight on the buffered channel: receive it and give the capacity
	// back.
	abandon := func() {
		if !m.cfg.Router.Cancel(d.UID) {
			pl := <-placed
			m.cfg.Sched.Release(pl.Alloc)
		}
	}
	var pl scheduler.Placement
	startDeadline := m.cfg.Clock.NewTimer(d.StartTimeout)
	defer startDeadline.Stop()
	select {
	case pl = <-placed:
	case <-m.cfg.Stopped:
		abandon()
		fail(fmt.Errorf("%w: %s while scheduling", ErrHostStopped, d.UID))
		return
	case <-startDeadline.C():
		abandon()
		fail(fmt.Errorf("service %s: start timeout in scheduling", d.UID))
		return
	}

	// launch on the target resource (BT `launch`)
	if err := inst.machine.To(states.ServiceLaunching); err != nil {
		pl.Alloc.Release()
		fail(err)
		return
	}
	inst.mu.Lock()
	inst.alloc = pl.Alloc
	inst.mu.Unlock()
	launchDur := m.cfg.Exec.Launch(d.UID)

	// The launch and init phases sleep simulated time; a pilot shutdown
	// during them must not let this bootstrap straggle on and publish a
	// dead endpoint after the session has started a failover. Check the
	// stop signal at each phase boundary (the publish-phase check below
	// is the one that guards the registry).
	stopCheck := func() bool {
		select {
		case <-m.cfg.Stopped:
			fail(fmt.Errorf("%w: %s during bootstrap", ErrHostStopped, d.UID))
			return true
		default:
			return false
		}
	}
	if stopCheck() {
		return
	}

	// capability initialization: model load (BT `init`)
	if err := inst.machine.To(states.ServiceInitializing); err != nil {
		fail(err)
		return
	}
	spec_, err := llm.Lookup(d.Model)
	if err != nil {
		fail(err)
		return
	}
	server, err := serving.New(serving.Config{
		UID:         d.UID,
		Backend:     serving.LLMBackend{M: llm.NewInstance(spec_, m.cfg.Clock, m.cfg.Src.Derive(d.UID+".model"))},
		Clock:       m.cfg.Clock,
		Src:         m.cfg.Src.Derive(d.UID + ".server"),
		Concurrency: d.Concurrency,
		QueueCap:    d.QueueCap,
		MaxBatch:    d.MaxBatch,
	})
	if err != nil {
		fail(err)
		return
	}
	initDur, err := server.Start()
	if err != nil {
		fail(err)
		return
	}

	// endpoint publication (BT `publish`)
	if stopCheck() {
		server.Stop()
		return
	}
	if err := inst.machine.To(states.ServicePublishing); err != nil {
		server.Stop()
		fail(err)
		return
	}
	node := pl.Alloc.Node().Name()
	addr := platform.Addr(m.cfg.Platform, node, d.UID)
	apiSrv, err := m.cfg.Net.BindVia(m.cfg.Transport, addr, server.Handler())
	if err != nil {
		server.Stop()
		fail(err)
		return
	}
	ctlSrv, err := m.cfg.Net.BindVia(m.cfg.Transport, addr+".ctl", m.controlHandler(inst))
	if err != nil {
		_ = apiSrv.Close()
		server.Stop()
		fail(err)
		return
	}
	// Publish the server's own address: identical to the logical addr on
	// the in-process transport, "tcp://host:port" over TCP so the endpoint
	// is dialable from other processes.
	publishDur := m.cfg.Registry.Publish(proto.Endpoint{
		ServiceUID: d.UID,
		Model:      d.Model,
		Address:    apiSrv.Addr(),
		Protocol:   "msgq",
		Node:       node,
	})

	ep, _ := m.cfg.Registry.Lookup(d.UID)
	inst.mu.Lock()
	inst.server = server
	inst.apiSrv = apiSrv
	inst.ctlSrv = ctlSrv
	inst.launchTime = launchDur
	inst.initTime = initDur
	inst.publishTime = publishDur
	inst.endpoint = ep
	inst.mu.Unlock()
	if m.cfg.OnPublish != nil {
		m.cfg.OnPublish(ep)
	}

	if err := inst.machine.To(states.ServiceActive); err != nil {
		fail(err)
		return
	}
	go m.probeLoop(inst)
}

// --- control channel -------------------------------------------------------

func (m *Manager) controlHandler(inst *Instance) msgq.Handler {
	return func(env proto.Envelope) proto.Envelope {
		var ctl proto.Control
		if err := env.Decode(proto.KindControl, &ctl); err != nil {
			out, _ := proto.NewEnvelope(proto.KindError, env.ID, inst.UID(), env.From, m.cfg.Clock.Now(),
				proto.ErrorBody{Origin: inst.UID(), Msg: err.Error()})
			return out
		}
		switch ctl.Command {
		case proto.CtlPing:
			inst.mu.Lock()
			srv, killed := inst.server, inst.killed
			inst.mu.Unlock()
			hb := proto.Heartbeat{ServiceUID: inst.UID(), At: m.cfg.Clock.Now()}
			if srv != nil && !killed {
				hb.Queued = srv.Queued()
				hb.InFlight = srv.InFlight()
				hb.QueueDepth = hb.Queued + hb.InFlight
				// Busy means "executing", not "has work somewhere": a
				// backlogged-but-stalled replica must not look busy.
				hb.Busy = hb.InFlight > 0
			}
			if killed || srv == nil || !srv.Ready() {
				out, _ := proto.NewEnvelope(proto.KindError, env.ID, inst.UID(), env.From, m.cfg.Clock.Now(),
					proto.ErrorBody{Origin: inst.UID(), Msg: "service not ready"})
				return out
			}
			out, _ := proto.NewEnvelope(proto.KindHeartbeat, env.ID, inst.UID(), env.From, m.cfg.Clock.Now(), hb)
			return out
		case proto.CtlDrain:
			go m.Terminate(inst.UID(), true) //nolint:errcheck
		case proto.CtlTerminate:
			go m.Terminate(inst.UID(), false) //nolint:errcheck
		}
		out, _ := proto.NewEnvelope(proto.KindControl, env.ID, inst.UID(), env.From, m.cfg.Clock.Now(), ctl)
		return out
	}
}

// probeLoop performs periodic liveness checks; two consecutive failed
// probes mark the service FAILED and withdraw its endpoint.
func (m *Manager) probeLoop(inst *Instance) {
	ticker := m.cfg.Clock.NewTicker(inst.desc.ProbeInterval)
	inst.mu.Lock()
	inst.probe = ticker
	inst.mu.Unlock()
	defer ticker.Stop()
	misses := 0
	for {
		select {
		case <-inst.probeStop:
			return
		case <-ticker.C():
			inst.mu.Lock()
			srv, killed := inst.server, inst.killed
			inst.mu.Unlock()
			alive := srv != nil && srv.Ready() && !killed
			if alive {
				misses = 0
				continue
			}
			misses++
			if misses >= 2 {
				if inst.machine.Current() == states.ServiceActive {
					inst.mu.Lock()
					inst.failErr = errors.New("service: liveness probe failed")
					inst.mu.Unlock()
					_ = inst.machine.Fail()
					m.cfg.Registry.Withdraw(inst.UID())
					m.teardown(inst)
				}
				return
			}
		}
	}
}

// teardown closes transports and releases resources.
func (m *Manager) teardown(inst *Instance) {
	inst.mu.Lock()
	api, ctl, alloc := inst.apiSrv, inst.ctlSrv, inst.alloc
	inst.apiSrv, inst.ctlSrv, inst.alloc = nil, nil, nil
	inst.mu.Unlock()
	if api != nil {
		_ = api.Close()
	}
	if ctl != nil {
		_ = ctl.Close()
	}
	if alloc != nil {
		alloc.Release()
	}
}

// WaitReady blocks until every listed service is ACTIVE (or any fails).
func (m *Manager) WaitReady(ctx context.Context, uids ...string) error {
	for _, uid := range uids {
		inst, ok := m.Get(uid)
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownService, uid)
		}
		for {
			switch inst.machine.Current() {
			case states.ServiceActive:
			case states.ServiceFailed, states.ServiceCanceled, states.ServiceDone:
				err := inst.Err()
				if err == nil {
					err = fmt.Errorf("service %s reached %s before ACTIVE", uid, inst.machine.Current())
				}
				return err
			default:
				ch := inst.machine.WaitChan()
				// re-check after registering the waiter: the transition to
				// ACTIVE may have been the machine's last, in which case the
				// channel never fires (lost-wakeup race)
				if s := inst.machine.Current(); s == states.ServiceActive || inst.machine.IsFinal() {
					continue
				}
				select {
				case <-ch:
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			break
		}
	}
	return nil
}

// Terminate stops a service. With drain=true, queued requests finish
// first (ACTIVE → DRAINING → DONE); otherwise the queue is flushed with
// errors.
func (m *Manager) Terminate(uid string, drain bool) error {
	inst, ok := m.Get(uid)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownService, uid)
	}
	if inst.machine.Current() != states.ServiceActive {
		return fmt.Errorf("%w: %s in %s", ErrNotActive, uid, inst.machine.Current())
	}
	close(inst.probeStop)
	m.cfg.Registry.Withdraw(uid)
	inst.mu.Lock()
	srv := inst.server
	inst.mu.Unlock()
	if drain {
		if err := inst.machine.To(states.ServiceDraining); err != nil {
			return err
		}
		if srv != nil {
			srv.Drain()
		}
	} else if srv != nil {
		srv.Stop()
	}
	m.teardown(inst)
	return inst.machine.To(states.ServiceDone)
}

// Close terminates every service (without drain) and refuses new
// submissions.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	insts := make([]*Instance, 0, len(m.services))
	for _, s := range m.services {
		insts = append(insts, s)
	}
	m.mu.Unlock()
	for _, s := range insts {
		if s.machine.Current() == states.ServiceActive {
			_ = m.Terminate(s.UID(), false)
		}
	}
}

// Command lintdoc enforces the repository's documentation floor, CI-side:
//
//   - every package under internal/ must carry a package-level godoc
//     comment ("// Package xyz ..."),
//   - every command under cmd/ must carry a command doc comment,
//   - in the fully documented packages (scheduler, msgq, pilot), every
//     exported top-level declaration — funcs, methods, types, and each
//     exported const/var group — must have a doc comment.
//
// It exits non-zero listing every violation, so `go run
// ./internal/tools/lintdoc` acts as the exported-comment check the docs
// CI job runs (a revive/golint subset with no external dependency).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fullDoc lists the packages whose exported identifiers must all carry
// doc comments (the runtime's load-bearing public surfaces).
var fullDoc = map[string]bool{
	"internal/scheduler": true,
	"internal/msgq":      true,
	"internal/pilot":     true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	report := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	dirs := packageDirs(root, report)
	for _, dir := range dirs {
		checkDir(root, dir, report)
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "lintdoc: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("lintdoc: %d packages documented\n", len(dirs))
}

// packageDirs returns every directory under internal/ and cmd/ that
// contains non-test Go files, relative to root.
func packageDirs(root string, report func(string, ...any)) []string {
	var dirs []string
	for _, top := range []string{"internal", "cmd"} {
		_ = filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return nil
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				report("lintdoc: %s: %v", path, err)
				return nil
			}
			for _, e := range ents {
				name := e.Name()
				if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
					rel, _ := filepath.Rel(root, path)
					dirs = append(dirs, filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
	}
	sort.Strings(dirs)
	return dirs
}

func checkDir(root, dir string, report func(string, ...any)) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		report("%s: parse: %v", dir, err)
		return
	}
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			report("%s: package %s has no package-level doc comment", dir, pkg.Name)
		}
		if !fullDoc[dir] {
			continue
		}
		for fileName, file := range pkg.Files {
			checkExported(fset, fileName, file, report)
		}
	}
}

// hasPackageDoc reports whether any file of the package carries a
// package doc comment.
func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// checkExported reports every exported top-level declaration in file
// that lacks a doc comment.
func checkExported(fset *token.FileSet, fileName string, file *ast.File, report func(string, ...any)) {
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", filepath.ToSlash(p.Filename), p.Line)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			label := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				label = fmt.Sprintf("(%s).%s", recvName(d.Recv.List[0].Type), d.Name.Name)
			}
			report("%s: exported %s has no doc comment", pos(d), label)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, s := range d.Specs {
					ts := s.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						report("%s: exported type %s has no doc comment", pos(ts), ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A group comment covers the whole block; otherwise each
				// exported spec needs its own.
				if d.Doc != nil {
					continue
				}
				for _, s := range d.Specs {
					vs := s.(*ast.ValueSpec)
					if vs.Doc != nil {
						continue
					}
					for _, name := range vs.Names {
						if name.IsExported() {
							report("%s: exported %s %s has no doc comment",
								pos(vs), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
}

// recvName renders a method receiver type for messages.
func recvName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.StarExpr:
		return "*" + recvName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr:
		return recvName(x.X)
	}
	return "?"
}

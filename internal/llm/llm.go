// Package llm simulates the ML models the paper serves through its runtime
// services. The paper hosts Meta Llama 3 8B with Ollama and also uses a
// NOOP model that replies instantly (Exp 2); this package reproduces both
// as calibrated performance models: a load/initialization phase (the
// dominant `init` component of bootstrap time in Fig. 3) and a token-rate
// inference phase (the dominant `inference` component of response time in
// Fig. 6).
//
// Substitution note (see DESIGN.md): we do not run a real 8B-parameter
// network — the experiments characterize runtime overheads, which depend
// on *when* and *for how long* the model computes, not on the text it
// produces. The simulated model spends the same (distribution-sampled)
// wall-clock time in the same code path and produces deterministic
// pseudo-text.
package llm

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// Spec is the static performance profile of one model.
type Spec struct {
	// Name identifies the model (e.g. "llama-8b", "noop").
	Name string
	// Params is a human-readable parameter count ("8B").
	Params string
	// MemGB is the accelerator memory footprint of one instance.
	MemGB float64
	// LoadTime is the time to load weights and initialize the runtime
	// (paper Fig. 3 `init`).
	LoadTime rng.DurationDist
	// PromptTokensPerSec is the prompt-evaluation throughput.
	PromptTokensPerSec float64
	// GenTokensPerSec is the autoregressive generation throughput.
	GenTokensPerSec float64
	// RateJitter is the relative standard deviation applied per request to
	// both throughputs (thermal/contention noise).
	RateJitter float64
	// DefaultMaxTokens bounds generation when the request does not.
	DefaultMaxTokens int
	// BatchSpill is the batched-inference cost model knob: a batch whose
	// members have solo durations d_i blocks once for
	//
	//	max(d_i) + BatchSpill · (Σ d_i − max(d_i))
	//
	// 0 models perfect overlap (the batch costs only its longest member),
	// 1 models no overlap (sequential execution). Production continuous-
	// batching servers sit near the low end: per-request model overhead
	// (weights traversal, kernel launches) amortizes across the batch and
	// only the marginal per-token work spills.
	BatchSpill float64
	// Noop marks the instant-reply model of Exp 2.
	Noop bool
}

// Catalog returns the specs of all known models, keyed by name.
func Catalog() map[string]Spec {
	specs := []Spec{
		{
			// Calibrated to the paper's Fig. 3: init dominates bootstrap at
			// roughly half a minute per instance, and Fig. 6: inference of a
			// chat-length reply takes seconds.
			Name: "llama-8b", Params: "8B", MemGB: 16,
			LoadTime:           rng.NormalDuration(26*time.Second, 4*time.Second),
			PromptTokensPerSec: 800, GenTokensPerSec: 35, RateJitter: 0.10,
			DefaultMaxTokens: 128, BatchSpill: 0.25,
		},
		{
			Name: "llama-70b", Params: "70B", MemGB: 80,
			LoadTime:           rng.NormalDuration(95*time.Second, 10*time.Second),
			PromptTokensPerSec: 250, GenTokensPerSec: 9, RateJitter: 0.10,
			DefaultMaxTokens: 128, BatchSpill: 0.25,
		},
		{
			Name: "mistral-7b", Params: "7B", MemGB: 15,
			LoadTime:           rng.NormalDuration(24*time.Second, 4*time.Second),
			PromptTokensPerSec: 850, GenTokensPerSec: 38, RateJitter: 0.10,
			DefaultMaxTokens: 128, BatchSpill: 0.25,
		},
		{
			// ViT for the Cell Painting pipeline (use case II-A): inference
			// here is image classification, modelled as a fixed per-batch
			// compute time via the generation rate.
			Name: "vit-base", Params: "86M", MemGB: 2,
			LoadTime:           rng.NormalDuration(6*time.Second, time.Second),
			PromptTokensPerSec: 5000, GenTokensPerSec: 2000, RateJitter: 0.15,
			DefaultMaxTokens: 16, BatchSpill: 0.10,
		},
		{
			// The paper's Exp 2 NOOP model: "a NOOP model, which will
			// immediately reply without performing any actual inference."
			Name: "noop", Params: "0", MemGB: 0, Noop: true,
		},
	}
	m := make(map[string]Spec, len(specs))
	for _, s := range specs {
		m[s.Name] = s
	}
	return m
}

// Lookup returns the named spec from the catalog.
func Lookup(name string) (Spec, error) {
	s, ok := Catalog()[name]
	if !ok {
		return Spec{}, fmt.Errorf("llm: unknown model %q", name)
	}
	return s, nil
}

// Instance is one loaded model. Create with NewInstance, then Load.
type Instance struct {
	spec   Spec
	clock  simtime.Clock
	src    *rng.Source
	loaded bool
}

// NewInstance binds a spec to a clock and a deterministic RNG stream.
func NewInstance(spec Spec, clock simtime.Clock, src *rng.Source) *Instance {
	return &Instance{spec: spec, clock: clock, src: src}
}

// Spec returns the instance's model spec.
func (m *Instance) Spec() Spec { return m.spec }

// Loaded reports whether Load completed.
func (m *Instance) Loaded() bool { return m.loaded }

// Load blocks for the model's load/initialization time. It is the `init`
// phase of the paper's bootstrap measurement.
func (m *Instance) Load() time.Duration {
	d := m.spec.LoadTime.Sample(m.src)
	if d > 0 {
		m.clock.Sleep(d)
	}
	m.loaded = true
	return d
}

// Result is the outcome of one inference.
type Result struct {
	Text         string
	PromptTokens int
	OutputTokens int
	Duration     time.Duration
}

// Infer runs one inference: it blocks for the modelled duration and
// returns deterministic pseudo-text. maxTokens <= 0 uses the spec default.
// Calling Infer on an unloaded non-noop instance is a programming error
// and panics, mirroring a crash of an unready service.
func (m *Instance) Infer(prompt string, maxTokens int) Result {
	if m.spec.Noop {
		return Result{Text: "", PromptTokens: 0, OutputTokens: 0}
	}
	if !m.loaded {
		panic(fmt.Sprintf("llm: Infer on unloaded model %s", m.spec.Name))
	}
	ptok, otok, d := m.planOne(prompt, maxTokens)
	if d > 0 {
		m.clock.Sleep(d)
	}
	return Result{
		Text:         GenerateText(m.src, m.spec.Name, otok),
		PromptTokens: ptok,
		OutputTokens: otok,
		Duration:     d,
	}
}

// planOne draws one request's inference plan — token counts and modelled
// solo duration — consuming exactly the RNG draws of the unbatched path
// in the same order (output length, then one throughput jitter per rate).
// Infer and InferBatch both build on it, which is what makes a batch of
// one byte-identical to an unbatched call.
func (m *Instance) planOne(prompt string, maxTokens int) (ptok, otok int, d time.Duration) {
	if maxTokens <= 0 {
		maxTokens = m.spec.DefaultMaxTokens
	}
	ptok = CountTokens(prompt)
	otok = m.outputLength(maxTokens)

	jitter := func(rate float64) float64 {
		if m.spec.RateJitter <= 0 {
			return rate
		}
		f := m.src.Normal(1, m.spec.RateJitter)
		if f < 0.2 {
			f = 0.2
		}
		return rate * f
	}
	if r := jitter(m.spec.PromptTokensPerSec); r > 0 {
		d += time.Duration(float64(ptok) / r * float64(time.Second))
	}
	if r := jitter(m.spec.GenTokensPerSec); r > 0 {
		d += time.Duration(float64(otok) / r * float64(time.Second))
	}
	return ptok, otok, d
}

// BatchItem is one request in a batched inference call.
type BatchItem struct {
	Prompt    string
	MaxTokens int // <= 0 uses the spec default
}

// InferBatch serves several requests as one batched model invocation.
// Each request draws the same per-request randomness as Infer would
// (output length, throughput jitter, pseudo-text), then the batch blocks
// once for the amortized duration of the Spec.BatchSpill cost model:
//
//	D = max(d_i) + BatchSpill · (Σ d_i − max(d_i))
//
// Every result reports D as its Duration — batch members finish together,
// like rows of one forward pass. A batch of one is byte-identical to
// Infer (the sleep consumes no randomness, so generating text before the
// collective sleep preserves the draw order), making batching safe to
// enable without perturbing unbatched workloads.
func (m *Instance) InferBatch(items []BatchItem) []Result {
	out := make([]Result, len(items))
	if m.spec.Noop {
		return out
	}
	if !m.loaded {
		panic(fmt.Sprintf("llm: InferBatch on unloaded model %s", m.spec.Name))
	}
	var sum, longest time.Duration
	for i, it := range items {
		ptok, otok, d := m.planOne(it.Prompt, it.MaxTokens)
		out[i] = Result{
			Text:         GenerateText(m.src, m.spec.Name, otok),
			PromptTokens: ptok,
			OutputTokens: otok,
		}
		sum += d
		if d > longest {
			longest = d
		}
	}
	d := longest + time.Duration(float64(sum-longest)*m.spec.BatchSpill)
	if d > 0 {
		m.clock.Sleep(d)
	}
	for i := range out {
		out[i].Duration = d
	}
	return out
}

// outputLength draws the reply length: around 3/4 of the budget with
// spread, clamped to [1, maxTokens].
func (m *Instance) outputLength(maxTokens int) int {
	mean := 0.75 * float64(maxTokens)
	n := int(m.src.Normal(mean, mean/4))
	if n < 1 {
		n = 1
	}
	if n > maxTokens {
		n = maxTokens
	}
	return n
}

// CountTokens approximates tokenization: whitespace-split words count ~1.3
// tokens each (subword splitting), matching common LLM tokenizer density.
func CountTokens(text string) int {
	words := len(strings.Fields(text))
	if words == 0 {
		return 0
	}
	return (words*13 + 9) / 10
}

// vocabulary for deterministic pseudo-text generation.
var vocabulary = []string{
	"radiation", "dose", "cell", "pathway", "gene", "signature", "variant",
	"response", "model", "inference", "workflow", "pilot", "service", "task",
	"analysis", "protein", "expression", "cluster", "sample", "annotation",
}

// GenerateText produces deterministic pseudo-text of n tokens for the
// given model name and RNG stream.
func GenerateText(src *rng.Source, model string, n int) string {
	if n <= 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("[" + model + "]")
	for i := 0; i < n; i++ {
		sb.WriteByte(' ')
		sb.WriteString(vocabulary[src.Intn(len(vocabulary))])
	}
	return sb.String()
}

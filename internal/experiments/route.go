package experiments

// Route ablation on mismatched pilots: the paper's prototype dispatches
// tasks to pilots round-robin ("only a rudimentary load balancing"),
// which binds a task to a pilot at submission time — the opposite of the
// late binding the pilot abstraction promises. On a session holding two
// deliberately mismatched pilots (the hetero campus's fat GPU partition
// and its thin CPU partition as separate pilots), round-robin sends half
// of the whole-fat-node tasks to the thin pilot, where no node shape can
// ever run them; the capacity-fit router consults pilot shapes and live
// scheduler snapshots and runs every task. RunRoute drives that
// comparison end to end and is the `rpexp -exp route` table.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/simtime"
	"repro/internal/spec"
	"repro/internal/states"
)

// RouteConfig parameterizes the routing ablation.
type RouteConfig struct {
	// Platform names a mixed-shape catalog platform (default "hetero");
	// one pilot is acquired per node-shape partition.
	Platform string
	// Routers are the strategies compared (default: round-robin,
	// least-loaded, capacity-fit).
	Routers []string
	// FatTasks is the number of whole-fat-node tasks (default: the fat
	// partition size). These are the shape-constrained probes only the
	// fat pilot can ever run.
	FatTasks int
	// ThinTasks is the number of thin tasks (default: the thin partition
	// size). Any pilot can run these.
	ThinTasks int
	// TaskTime is the simulated task duration (default 5s).
	TaskTime time.Duration
	// Scale is the clock compression (default 2000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
}

// DefaultRouteConfig returns the figure-scale parameterization: one
// whole-node task per fat node plus one thin task per thin node, on the
// hetero campus split into a fat pilot and a thin pilot.
func DefaultRouteConfig() RouteConfig {
	return RouteConfig{
		Platform: "hetero",
		Routers:  []string{router.NameRoundRobin, router.NameLeastLoaded, router.NameCapacityFit},
		TaskTime: 5 * time.Second,
		Scale:    2000,
		Seed:     6,
	}
}

// RouteRow is one router's outcome on the mismatched pilots.
type RouteRow struct {
	Router     string
	FatDone    int
	FatFailed  int
	ThinDone   int
	ThinFailed int
	// Rejected counts tasks refused at submit (capacity-fit rejects
	// tasks that fit no pilot's shapes; with this workload it stays 0 —
	// every task fits somewhere).
	Rejected int
	// Reroutes counts session-level re-binds (pilot churn; 0 here).
	Reroutes int
}

// RouteResult is the routing-ablation dataset.
type RouteResult struct {
	Cfg RouteConfig
	// FatPilotShapes / ThinPilotShapes describe the two mismatched pilots.
	FatPilotShapes, ThinPilotShapes string
	// FatCores/FatGPUs and ThinCores are the per-task demands.
	FatCores, FatGPUs, ThinCores int
	Rows                         []RouteRow
}

// RunRoute executes the routing ablation: identical workloads on
// identically mismatched pilots, once per router strategy.
func RunRoute(ctx context.Context, cfg RouteConfig) (*RouteResult, error) {
	if cfg.Platform == "" {
		cfg.Platform = "hetero"
	}
	if len(cfg.Routers) == 0 {
		cfg.Routers = DefaultRouteConfig().Routers
	}
	if cfg.TaskTime <= 0 {
		cfg.TaskTime = 5 * time.Second
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 2000
	}
	plat := platform.DefaultTopology().Platform(cfg.Platform)
	if plat == nil {
		return nil, fmt.Errorf("experiments: route: unknown platform %q", cfg.Platform)
	}
	shapes := plat.Shapes()
	if len(shapes) < 2 {
		return nil, fmt.Errorf("experiments: route: platform %q is homogeneous (%s); mismatched pilots need a mixed platform",
			cfg.Platform, platform.FormatShapes(shapes))
	}
	thin, fat := thinAndFat(shapes)
	if cfg.FatTasks <= 0 {
		cfg.FatTasks = fat.Count
	}
	if cfg.ThinTasks <= 0 {
		cfg.ThinTasks = thin.Count
	}
	res := &RouteResult{
		Cfg:       cfg,
		FatCores:  fat.Spec.Cores,
		FatGPUs:   fat.Spec.GPUs,
		ThinCores: thin.Spec.Cores,
	}
	for _, rt := range cfg.Routers {
		row, err := runRoutePoint(ctx, cfg, rt, res)
		if err != nil {
			return res, fmt.Errorf("experiments: route %s on %s: %w", rt, cfg.Platform, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runRoutePoint runs the workload under one router: a session holding
// one pilot per node-shape partition of the platform, fat tasks
// interleaving with the router's rotation, all task outcomes counted.
func runRoutePoint(ctx context.Context, cfg RouteConfig, rt string, res *RouteResult) (RouteRow, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:     cfg.Seed,
		Clock:    simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		FastBoot: true,
		Router:   rt,
	})
	if err != nil {
		return RouteRow{}, err
	}
	defer sess.Close()

	// One pilot per consecutive shape partition: platform node order is
	// partition order, so Nodes-count acquisition carves them exactly.
	plat := sess.Topology().Platform(cfg.Platform)
	tm := sess.TaskManager()
	for _, g := range plat.Shapes() {
		p, err := sess.PilotManager().Submit(spec.PilotDescription{
			Platform: cfg.Platform, Nodes: g.Count,
		})
		if err != nil {
			return RouteRow{}, err
		}
		pilotShapes := platform.FormatShapes(p.Shapes())
		if g.Spec.GPUs > 0 && res.FatPilotShapes == "" {
			res.FatPilotShapes = pilotShapes
		} else if res.ThinPilotShapes == "" {
			res.ThinPilotShapes = pilotShapes
		}
		tm.AddPilot(p)
	}

	row := RouteRow{Router: rt}
	dur := rng.ConstDuration(cfg.TaskTime)
	var fatTasks, thinTasks []*core.Task
	submit := func(d spec.TaskDescription) (*core.Task, error) {
		ts, err := tm.Submit(ctx, d)
		if err != nil {
			var unroutable router.ErrUnroutable
			if errors.As(err, &unroutable) {
				row.Rejected++
				return nil, nil
			}
			return nil, err
		}
		return ts[0], nil
	}
	for i := 0; i < cfg.FatTasks; i++ {
		t, err := submit(spec.TaskDescription{
			Name:  fmt.Sprintf("fat-%04d", i),
			Cores: res.FatCores, GPUs: res.FatGPUs, Duration: dur,
		})
		if err != nil {
			return row, err
		}
		if t != nil {
			fatTasks = append(fatTasks, t)
		}
	}
	for i := 0; i < cfg.ThinTasks; i++ {
		t, err := submit(spec.TaskDescription{
			Name:  fmt.Sprintf("thin-%04d", i),
			Cores: res.ThinCores, Duration: dur,
		})
		if err != nil {
			return row, err
		}
		if t != nil {
			thinTasks = append(thinTasks, t)
		}
	}

	// Wait for every accepted task to settle (failures included — a
	// misrouted fat task fails fast as unsatisfiable on the thin pilot).
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	_ = tm.Wait(waitCtx, append(append([]*core.Task{}, fatTasks...), thinTasks...)...)
	if err := waitCtx.Err(); err != nil {
		return row, fmt.Errorf("tasks did not settle: %w", err)
	}
	count := func(tasks []*core.Task) (done, failed int, reroutes int) {
		for _, t := range tasks {
			switch t.State() {
			case states.TaskDone:
				done++
			default:
				failed++
			}
			reroutes += t.Reroutes()
		}
		return done, failed, reroutes
	}
	var rr int
	row.FatDone, row.FatFailed, rr = count(fatTasks)
	row.Reroutes += rr
	row.ThinDone, row.ThinFailed, rr = count(thinTasks)
	row.Reroutes += rr
	return row, nil
}

// Table renders the routing ablation.
func (r *RouteResult) Table() metrics.Table {
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Route ablation — %s split into mismatched pilots (%s | %s), %d fat tasks (%dc/%dg) + %d thin tasks (%dc)",
			r.Cfg.Platform, r.FatPilotShapes, r.ThinPilotShapes,
			r.Cfg.FatTasks, r.FatCores, r.FatGPUs, r.Cfg.ThinTasks, r.ThinCores),
		Header: []string{"router", "fat done", "fat failed", "thin done", "thin failed", "rejected", "reroutes"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Router,
			fmt.Sprintf("%d/%d", row.FatDone, r.Cfg.FatTasks),
			fmt.Sprintf("%d", row.FatFailed),
			fmt.Sprintf("%d/%d", row.ThinDone, r.Cfg.ThinTasks),
			fmt.Sprintf("%d", row.ThinFailed),
			fmt.Sprintf("%d", row.Rejected),
			fmt.Sprintf("%d", row.Reroutes))
	}
	return t
}

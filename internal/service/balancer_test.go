package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
)

// balReg builds a registry holding base "svc" plus n replica members
// m1..mn, every endpoint published and admitted to the balancing group.
func balReg(n int) *EndpointRegistry {
	reg := NewEndpointRegistry()
	reg.Publish(ep("svc", "addr-svc"))
	for i := 1; i <= n; i++ {
		uid := fmt.Sprintf("m%d", i)
		reg.Publish(ep(uid, "addr-"+uid))
		reg.AddMember("svc", uid)
	}
	return reg
}

func balDial(ep proto.Endpoint) (Caller, error) {
	return &poolCaller{uid: ep.ServiceUID, addr: ep.Address}, nil
}

func TestBalancerNoMembersPicksBase(t *testing.T) {
	reg := NewEndpointRegistry()
	reg.Publish(ep("svc", "addr-svc"))
	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 4; i++ {
		if got := b.Pick(); got != "svc" {
			t.Fatalf("Pick = %q with no members, want svc", got)
		}
	}
}

// TestBalancerP2CPickDistribution pins the seeded probe sequence: with
// one member carrying a deep queue and fresh reports all around, p2c
// never routes to it — identical probes are nudged apart, so the hot
// member always loses its comparison — while blind rotation would send
// it a full quarter. The counts are exact: seeded splitmix64 walk, no
// wall clock.
func TestBalancerP2CPickDistribution(t *testing.T) {
	reg := balReg(3)
	now := time.Unix(1000, 0)
	for _, uid := range []string{"svc", "m1", "m3"} {
		reg.ReportLoad(uid, Load{Queued: 0, At: now})
	}
	reg.ReportLoad("m2", Load{Queued: 100, At: now}) // the hot member

	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    1,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const picks = 1600
	got := map[string]int{}
	for i := 0; i < picks; i++ {
		got[b.Pick()]++
	}
	want := map[string]int{"svc": 490, "m1": 487, "m2": 0, "m3": 623}
	for uid, n := range want {
		if got[uid] != n {
			t.Fatalf("pick counts = %v, want %v (seeded sequence changed?)", got, want)
		}
	}
	// the property behind the pinned numbers: the hot member gets far
	// less than the 400 a load-blind rotation would send it
	if got["m2"] >= picks/4 {
		t.Fatalf("hot member got %d/%d picks — load-blind", got["m2"], picks)
	}

	// determinism: a same-seed balancer reproduces the sequence exactly
	b2, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    1,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got2 := map[string]int{}
	for i := 0; i < picks; i++ {
		got2[b2.Pick()]++
	}
	for uid, n := range got {
		if got2[uid] != n {
			t.Fatalf("same-seed replay diverged: %v vs %v", got2, got)
		}
	}
}

// TestBalancerStaleReportsFallBackToRotation: when the load reports are
// older than the horizon the picker must not trust them — picks degrade
// to blind rotation, which spreads exactly evenly.
func TestBalancerStaleReportsFallBackToRotation(t *testing.T) {
	reg := balReg(3)
	reported := time.Unix(1000, 0)
	now := reported.Add(time.Minute) // far beyond the 1s horizon
	reg.ReportLoad("svc", Load{Queued: 0, At: reported})
	reg.ReportLoad("m1", Load{Queued: 0, At: reported})
	reg.ReportLoad("m2", Load{Queued: 100, At: reported})
	reg.ReportLoad("m3", Load{Queued: 0, At: reported})

	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    1,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := map[string]int{}
	for i := 0; i < 400; i++ {
		got[b.Pick()]++
	}
	for _, uid := range []string{"svc", "m1", "m2", "m3"} {
		if got[uid] != 100 {
			t.Fatalf("stale-report picks = %v, want an exact 100 each (rotation)", got)
		}
	}
}

// TestBalancerNoTimebaseIgnoresLoad: without a Now source every report
// counts as stale — the balancer must still work, spreading by rotation.
func TestBalancerNoTimebaseIgnoresLoad(t *testing.T) {
	reg := balReg(1)
	reg.ReportLoad("svc", Load{Queued: 100, At: time.Unix(1000, 0)})
	reg.ReportLoad("m1", Load{Queued: 0, At: time.Unix(1000, 0)})
	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := map[string]int{}
	for i := 0; i < 100; i++ {
		got[b.Pick()]++
	}
	if got["svc"] != 50 || got["m1"] != 50 {
		t.Fatalf("no-timebase picks = %v, want 50/50 rotation", got)
	}
}

// TestBalancerMembershipChurnDuringPick hammers Pick while the
// autoscaler's membership calls run concurrently: the atomically-swapped
// immutable view must keep every pick valid (base or a member that was
// alive at some recent instant) with no torn reads — the race detector
// is the other half of this test.
func TestBalancerMembershipChurnDuringPick(t *testing.T) {
	reg := balReg(4)
	now := time.Unix(1000, 0)
	valid := map[string]bool{"svc": true, "m1": true, "m2": true, "m3": true, "m4": true}
	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    7,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			uid := fmt.Sprintf("m%d", i%4+1)
			reg.RemoveMember("svc", uid)
			reg.ReportLoad(uid, Load{Queued: i % 5, At: now})
			reg.AddMember("svc", uid)
		}
	}()

	var bad atomic.Value
	var pickers sync.WaitGroup
	for g := 0; g < 4; g++ {
		pickers.Add(1)
		go func() {
			defer pickers.Done()
			for i := 0; i < 20000; i++ {
				if uid := b.Pick(); !valid[uid] {
					bad.Store(uid)
					return
				}
			}
		}()
	}
	pickers.Wait()
	close(stop)
	<-churnDone
	if u := bad.Load(); u != nil {
		t.Fatalf("Pick returned unknown UID %q during churn", u)
	}
}

// TestBalancerPickZeroAllocs enforces the acceptance budget: the pick
// path — view load, two probes, fallback check — allocates nothing.
func TestBalancerPickZeroAllocs(t *testing.T) {
	reg := balReg(7)
	now := time.Unix(1000, 0)
	reg.ReportLoad("svc", Load{Queued: 1, At: now})
	for i := 1; i <= 7; i++ {
		reg.ReportLoad(fmt.Sprintf("m%d", i), Load{Queued: i, At: now})
	}
	b, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    3,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if avg := testing.AllocsPerRun(1000, func() { b.Pick() }); avg != 0 {
		t.Fatalf("Pick allocates %.1f objects per call, want 0", avg)
	}
}

// BenchmarkBalancerPick measures the constant-time pick path over an
// 8-wide group (base + 7 members) with fresh load reports.
func BenchmarkBalancerPick(b *testing.B) {
	reg := balReg(7)
	now := time.Unix(1000, 0)
	reg.ReportLoad("svc", Load{Queued: 1, At: now})
	for i := 1; i <= 7; i++ {
		reg.ReportLoad(fmt.Sprintf("m%d", i), Load{Queued: i, At: now})
	}
	bal, err := NewBalancer(reg, "svc", balDial, BalancerOptions{
		Seed:    3,
		Now:     func() time.Time { return now },
		Horizon: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bal.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bal.Pick()
	}
}

package simtime

import (
	"container/heap"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Time only moves when it
// is advanced, either explicitly via Advance/AdvanceTo, or — in
// auto-advance mode — when every goroutine registered with the clock is
// blocked in Sleep, at which point the clock jumps to the earliest pending
// deadline.
//
// Auto-advance mode implements the classic cooperative discrete-event
// simulation contract: goroutines participating in simulated time must be
// spawned with Go (or bracketed with AddRunner/DoneRunner), and goroutines
// that block on channels rather than on the clock must bracket the blocking
// region with Block/Unblock so the clock knows they are not runnable.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	sleepers sleeperHeap
	seq      uint64 // tiebreaker for equal deadlines: FIFO order
	auto     bool
	running  int // registered runnable goroutines (auto mode)
	// sleeping counts pending blocksRunner sleepers (auto mode). The
	// auto-advance loop only moves time while one exists: a Sleep waking
	// is the only way firing can hand control back to a goroutine, so
	// with none pending, advancing would just spin re-arming tickers —
	// timers and tickers alone never pull time forward.
	sleeping int
}

// NewVirtual returns a manually advanced virtual clock starting at origin.
func NewVirtual(origin time.Time) *Virtual {
	return &Virtual{now: origin}
}

// NewVirtualAuto returns a virtual clock in auto-advance mode starting at
// origin.
func NewVirtualAuto(origin time.Time) *Virtual {
	return &Virtual{now: origin, auto: true}
}

type sleeper struct {
	deadline time.Time
	seq      uint64
	period   time.Duration // > 0 for tickers: re-armed on fire
	ch       chan time.Time
	stopped  bool
	index    int
	// blocksRunner marks sleepers created by Sleep in auto mode: firing
	// them returns a registered goroutine to the runnable pool.
	blocksRunner bool
}

type sleeperHeap []*sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h sleeperHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *sleeperHeap) Push(x any) {
	s := x.(*sleeper)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*h = old[:n-1]
	return s
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Go spawns fn as a goroutine registered with the clock (auto mode). The
// registration is released when fn returns.
func (v *Virtual) Go(fn func()) {
	v.AddRunner()
	go func() {
		defer v.DoneRunner()
		fn()
	}()
}

// AddRunner registers the calling (or an about-to-start) goroutine as
// runnable for auto-advance accounting.
func (v *Virtual) AddRunner() {
	v.mu.Lock()
	v.running++
	v.mu.Unlock()
}

// DoneRunner deregisters a goroutine previously registered with AddRunner.
func (v *Virtual) DoneRunner() {
	v.mu.Lock()
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Block marks the calling registered goroutine as not runnable, because it
// is about to wait on something other than the clock (e.g. a channel).
func (v *Virtual) Block() {
	v.mu.Lock()
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Unblock marks the calling registered goroutine as runnable again.
func (v *Virtual) Unblock() {
	v.mu.Lock()
	v.running++
	v.mu.Unlock()
}

func (v *Virtual) push(deadline time.Time, period time.Duration) *sleeper {
	s := &sleeper{deadline: deadline, seq: v.seq, period: period, ch: make(chan time.Time, 1)}
	v.seq++
	heap.Push(&v.sleepers, s)
	return s
}

// Sleep implements Clock. In auto mode the calling goroutine must be
// registered; the clock treats it as blocked for the duration.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := v.push(v.now.Add(d), 0)
	if v.auto {
		s.blocksRunner = true
		v.sleeping++
		v.running--
		v.maybeAdvanceLocked()
	}
	v.mu.Unlock()
	<-s.ch
}

// After implements Clock. The returned channel fires when the clock reaches
// now+d. In auto mode, After alone does not mark the goroutine blocked;
// bracket the receive with Block/Unblock if needed.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	s := v.push(v.now.Add(d), 0)
	v.mu.Unlock()
	return s.ch
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	s := v.push(v.now.Add(d), 0)
	v.mu.Unlock()
	return &virtualTimer{clock: v, s: s}
}

type virtualTimer struct {
	clock *Virtual
	s     *sleeper
}

func (t *virtualTimer) C() <-chan time.Time { return t.s.ch }

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.s.stopped || t.s.index < 0 {
		return false
	}
	t.s.stopped = true
	heap.Remove(&t.clock.sleepers, t.s.index)
	return true
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("simtime: non-positive ticker period")
	}
	v.mu.Lock()
	s := v.push(v.now.Add(d), d)
	v.mu.Unlock()
	return &virtualTicker{clock: v, s: s}
}

type virtualTicker struct {
	clock *Virtual
	s     *sleeper
}

func (t *virtualTicker) C() <-chan time.Time { return t.s.ch }

func (t *virtualTicker) Stop() {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.s.stopped {
		return
	}
	t.s.stopped = true
	if t.s.index >= 0 {
		heap.Remove(&t.clock.sleepers, t.s.index)
	}
}

// Advance moves the clock forward by d, firing every timer, sleeper and
// ticker whose deadline falls within the window, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceToLocked(v.now.Add(d))
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to t (no-op if t is not after now).
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceToLocked(t)
	v.mu.Unlock()
}

// PendingSleepers returns the number of unexpired timers/sleepers/tickers.
func (v *Virtual) PendingSleepers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sleepers.Len()
}

// NextDeadline returns the earliest pending deadline and whether one exists.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.sleepers.Len() == 0 {
		return time.Time{}, false
	}
	return v.sleepers[0].deadline, true
}

func (v *Virtual) advanceToLocked(target time.Time) {
	for v.sleepers.Len() > 0 && !v.sleepers[0].deadline.After(target) {
		s := heap.Pop(&v.sleepers).(*sleeper)
		v.now = s.deadline
		v.fireLocked(s)
	}
	if target.After(v.now) {
		v.now = target
	}
}

func (v *Virtual) fireLocked(s *sleeper) {
	select {
	case s.ch <- v.now:
	default: // slow consumer: drop, like time.Ticker
	}
	if s.period > 0 && !s.stopped {
		s.deadline = s.deadline.Add(s.period)
		s.seq = v.seq
		v.seq++
		heap.Push(&v.sleepers, s)
	}
	if v.auto && s.blocksRunner {
		v.sleeping--
		v.running++ // the woken Sleep caller becomes runnable again
	}
}

// maybeAdvanceLocked advances to the next deadline when no registered
// goroutine is runnable (auto mode only). It keeps firing only while a
// Sleep-blocked goroutine is still pending: waking a Sleep is the only
// fire that returns control to a goroutine, so without one the loop
// would spin forever re-arming periodic tickers (and drag the clock to
// infinity). Timers and tickers due before the earliest pending Sleep
// still fire, in deadline order, on the way there.
func (v *Virtual) maybeAdvanceLocked() {
	if !v.auto {
		return
	}
	for v.running <= 0 && v.sleeping > 0 && v.sleepers.Len() > 0 {
		s := heap.Pop(&v.sleepers).(*sleeper)
		v.now = s.deadline
		v.fireLocked(s)
	}
}

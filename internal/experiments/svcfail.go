package experiments

// Service-failover ablation: the paper treats services as schedulable
// entities inside pilots, which couples every client of a service to the
// lifetime of the pilot hosting it. This ablation quantifies what the
// session-level endpoint registry and failure-driven re-placement buy:
// on the hetero campus split into two pilots, a noop service bootstraps
// on the first pilot, clients stream requests against it, and the
// hosting pilot is killed mid-stream. The session re-places the service
// on the survivor and re-publishes its endpoint under the same UID with
// a bumped generation. A client that cached the raw endpoint (the seed
// behaviour) loses every post-failover request against the dead address;
// a registry-resolving client detects the stale generation, redials, and
// recovers all of them. RunSvcFail drives both client styles over the
// identical scenario and is the `rpexp -exp svcfail` table.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/spec"
)

// SvcFailClientCaching and SvcFailClientResolving name the two client
// styles the ablation contrasts.
const (
	SvcFailClientCaching   = "endpoint-caching"
	SvcFailClientResolving = "registry-resolving"
)

// SvcFailConfig parameterizes the service-failover ablation.
type SvcFailConfig struct {
	// Platform names a mixed-shape catalog platform split into one pilot
	// per node-shape partition (default "hetero").
	Platform string
	// Requests is the client's total request budget (default 32).
	Requests int
	// KillAfter is how many requests complete before the hosting pilot is
	// killed (default Requests/2).
	KillAfter int
	// Clients are the styles compared (default: both).
	Clients []string
	// Scale is the clock compression (default 2000).
	Scale float64
	// Seed drives determinism.
	Seed uint64
}

// DefaultSvcFailConfig returns the figure-scale parameterization.
func DefaultSvcFailConfig() SvcFailConfig {
	return SvcFailConfig{
		Platform: "hetero",
		Requests: 32,
		Clients:  []string{SvcFailClientCaching, SvcFailClientResolving},
		Scale:    2000,
		Seed:     9,
	}
}

// SvcFailRow is one client style's outcome across the failover.
type SvcFailRow struct {
	Client string
	// PreKill counts successful requests before the pilot is killed
	// (always KillAfter when the scenario is healthy).
	PreKill int
	// Recovered and Failed count post-failover requests that succeeded /
	// errored. The acceptance contrast: caching recovers 0, resolving
	// recovers all of them.
	Recovered int
	Failed    int
	// Reresolved counts the resolver's stale-generation redials (0 for
	// the caching client).
	Reresolved int
	// Replacements is the session-level re-placement count of the service
	// (1: it failed over exactly once).
	Replacements int
	// Generation is the endpoint generation after the failover (2: one
	// initial publication plus one re-publication).
	Generation uint64
	// HostBefore and HostAfter are the hosting pilot UIDs around the kill.
	HostBefore, HostAfter string
}

// SvcFailResult is the ablation dataset.
type SvcFailResult struct {
	Cfg  SvcFailConfig
	Rows []SvcFailRow
}

// RunSvcFail executes the failover ablation: the identical
// kill-the-hosting-pilot scenario once per client style.
func RunSvcFail(ctx context.Context, cfg SvcFailConfig) (*SvcFailResult, error) {
	if cfg.Platform == "" {
		cfg.Platform = "hetero"
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 32
	}
	if cfg.KillAfter <= 0 || cfg.KillAfter >= cfg.Requests {
		cfg.KillAfter = cfg.Requests / 2
	}
	if len(cfg.Clients) == 0 {
		cfg.Clients = []string{SvcFailClientCaching, SvcFailClientResolving}
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 2000
	}
	res := &SvcFailResult{Cfg: cfg}
	for _, client := range cfg.Clients {
		row, err := runSvcFailPoint(ctx, cfg, client)
		if err != nil {
			return res, fmt.Errorf("experiments: svcfail %s on %s: %w", client, cfg.Platform, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runSvcFailPoint runs the scenario under one client style: two pilots
// (one per shape partition), one routed noop service, a sequential
// request stream interrupted by killing the hosting pilot, then resumed
// once the failover re-publication lands — so both styles race against a
// service that is provably live again, and the contrast isolates the
// client's endpoint-resolution strategy.
func runSvcFailPoint(ctx context.Context, cfg SvcFailConfig, client string) (SvcFailRow, error) {
	sess, err := core.NewSession(core.SessionConfig{
		Seed:     cfg.Seed,
		Clock:    simtime.NewScaled(cfg.Scale, core.DefaultOrigin),
		FastBoot: true,
	})
	if err != nil {
		return SvcFailRow{}, err
	}
	defer sess.Close()

	plat := sess.Topology().Platform(cfg.Platform)
	if plat == nil {
		return SvcFailRow{}, fmt.Errorf("unknown platform %q", cfg.Platform)
	}
	sm := sess.ServiceManager()
	var pilots []*pilot.Pilot
	for _, g := range plat.Shapes() {
		p, err := sess.PilotManager().Submit(spec.PilotDescription{
			Platform: cfg.Platform, Nodes: g.Count,
		})
		if err != nil {
			return SvcFailRow{}, err
		}
		pilots = append(pilots, p)
		sm.AddPilot(p)
	}
	if len(pilots) < 2 {
		return SvcFailRow{}, fmt.Errorf("platform %q yields %d pilots; the failover needs a survivor", cfg.Platform, len(pilots))
	}

	h, err := sm.Submit(spec.ServiceDescription{
		TaskDescription: spec.TaskDescription{Name: "svc", Cores: 1},
		Model:           "noop",
		ProbeInterval:   time.Hour,
		StartTimeout:    time.Hour,
	})
	if err != nil {
		return SvcFailRow{}, err
	}
	if err := sm.WaitReady(ctx, h.UID()); err != nil {
		return SvcFailRow{}, err
	}
	row := SvcFailRow{Client: client, HostBefore: h.Pilot()}

	clientAddr := platform.Addr(cfg.Platform, "", "svcfail-client")
	var caller service.Caller
	var resolver *service.Resolver
	switch client {
	case SvcFailClientCaching:
		// the seed client: dial the published endpoint once and keep it
		caller, err = sess.Dial(clientAddr, h.Endpoint())
	case SvcFailClientResolving:
		resolver, err = sess.DialService(clientAddr, h.UID())
		caller = resolver
	default:
		return row, fmt.Errorf("unknown client style %q", client)
	}
	if err != nil {
		return row, err
	}
	defer caller.Close()

	for i := 0; i < cfg.KillAfter; i++ {
		if _, _, err := caller.Infer(ctx, fmt.Sprintf("pre-%d", i), 0); err != nil {
			return row, fmt.Errorf("pre-kill request %d: %w", i, err)
		}
		row.PreKill++
	}

	// Kill the hosting pilot mid-stream and wait for the session to
	// re-place the service and re-publish its endpoint.
	var host *pilot.Pilot
	for _, p := range pilots {
		if p.UID() == row.HostBefore {
			host = p
		}
	}
	if host == nil {
		return row, fmt.Errorf("hosting pilot %s not found", row.HostBefore)
	}
	genBefore := sess.EndpointRegistry().Generation(h.UID())
	if err := host.Shutdown(); err != nil {
		return row, err
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, gen, err := sess.EndpointRegistry().AwaitNewer(waitCtx, h.UID(), genBefore); err != nil {
		return row, fmt.Errorf("failover re-publication never landed: %w", err)
	} else {
		row.Generation = gen
	}
	row.HostAfter = h.Pilot()
	row.Replacements = h.Replacements()

	for i := 0; i < cfg.Requests-cfg.KillAfter; i++ {
		if _, _, err := caller.Infer(ctx, fmt.Sprintf("post-%d", i), 0); err != nil {
			row.Failed++
		} else {
			row.Recovered++
		}
	}
	if resolver != nil {
		row.Reresolved = resolver.Reresolved()
	}
	return row, nil
}

// Table renders the failover ablation.
func (r *SvcFailResult) Table() metrics.Table {
	post := r.Cfg.Requests - r.Cfg.KillAfter
	t := metrics.Table{
		Title: fmt.Sprintf(
			"Service-failover ablation — %s split into per-shape pilots, hosting pilot killed after %d/%d requests (%d post-failover)",
			r.Cfg.Platform, r.Cfg.KillAfter, r.Cfg.Requests, post),
		Header: []string{"client", "pre-kill ok", "recovered", "failed", "re-resolved", "replacements", "endpoint gen"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Client,
			fmt.Sprintf("%d/%d", row.PreKill, r.Cfg.KillAfter),
			fmt.Sprintf("%d/%d", row.Recovered, post),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%d", row.Reresolved),
			fmt.Sprintf("%d", row.Replacements),
			fmt.Sprintf("%d", row.Generation))
	}
	return t
}

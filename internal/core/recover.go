package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/msgq"
	"repro/internal/pilot"
	"repro/internal/platform"
	"repro/internal/profile"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/simtime"
	"repro/internal/states"
)

// RecoverConfig parameterizes crash recovery. Every field is optional:
// when a surviving pilot is found, its clock and network are adopted (the
// recovered client must share the machines' timeline); the fields below
// only seed a recovery with no survivors.
type RecoverConfig struct {
	// Clock is used when no surviving pilot supplies one (default: a
	// 1000x scaled clock at DefaultOrigin, as in NewSession).
	Clock simtime.Clock
	// Topology is used when no surviving pilot supplies a network
	// (default: the full catalog topology).
	Topology *platform.Topology
	// FlushEvery overrides the reopened journal's fsync batching interval.
	FlushEvery time.Duration
}

// RecoveryReport accounts for every decision Recover made, by entity UID.
// The exact-count ablation (and any operator) reads it instead of diffing
// journals.
type RecoveryReport struct {
	// SessionUID is the recovered session identity (unchanged across
	// incarnations); Incarnation is the new, post-recovery incarnation.
	SessionUID  string
	Incarnation uint64
	// Stats is the journal replay accounting.
	Stats *journal.ReplayStats

	// PilotsAlive lists surviving pilots the session reattached to;
	// PilotsLost lists journaled pilots that died with (or before) the
	// client.
	PilotsAlive []string
	PilotsLost  []string

	// TasksReattached were found still running (or settled) on a
	// surviving pilot; TasksRerouted lost their pilot and re-entered
	// routing; TasksSettled were already final in the journal — or pinned
	// to a dead pilot, which settles them with pilot.ErrPilotStopped.
	TasksReattached []string
	TasksRerouted   []string
	TasksSettled    []string

	// ServicesReattached were found live on a surviving pilot and had
	// their endpoints re-published under the new incarnation;
	// ServicesReplaced lost their pilot and were re-placed on a survivor;
	// ServicesSettled were withdrawn (or pinned to a dead pilot) and stay
	// down.
	ServicesReattached []string
	ServicesReplaced   []string
	ServicesSettled    []string
}

// Recover reconstructs a journaled session after a client crash. It
// replays the write-ahead journal at journalPath into a snapshot, starts
// a new session incarnation under the journaled identity, reattaches to
// every surviving pilot (rebinding the pilot's session-side hooks to the
// new session), and settles every journaled task and service exactly the
// way the pre-crash session would have had it watched the same events:
//
//   - tasks and services that reached a final state stay final;
//   - work still in flight on a surviving pilot is re-pinned and watched;
//   - work whose pilot died while the client was down re-enters routing
//     over the survivors (pinned work settles with ErrPilotStopped,
//     mirroring live failover semantics);
//   - a binding journaled without a matching pilot-side handle (the
//     client crashed between the bind append and the dispatch) is
//     re-dispatched — the WAL writes intent before action, so the torn
//     step re-runs rather than vanishing.
//
// The new incarnation is journaled+1; the endpoint registry's fence moves
// to it, so a zombie publication stamped by the previous incarnation is
// rejected (service.ErrStaleIncarnation) instead of clobbering a
// re-placed successor. Generation floors from the journal guarantee every
// post-recovery re-publication ranks strictly newer than any endpoint a
// pre-crash client may still hold.
func Recover(journalPath string, cfg RecoverConfig) (*Session, *RecoveryReport, error) {
	snap, stats, err := journal.ReplayFile(journalPath)
	if err != nil {
		return nil, &RecoveryReport{Stats: stats}, err
	}
	if snap.Session.UID == "" {
		return nil, &RecoveryReport{Stats: stats}, errors.New("core: journal holds no session record")
	}
	rep := &RecoveryReport{
		SessionUID:  snap.Session.UID,
		Incarnation: snap.Session.Incarnation + 1,
		Stats:       stats,
	}

	// Fail fast on configuration the journaled session used but this build
	// does not know (a journal from a newer version).
	if _, err := scheduler.PolicyByName(snap.Session.SchedPolicy); err != nil {
		return nil, rep, err
	}
	rt, err := router.ByName(snap.Session.Router)
	if err != nil {
		return nil, rep, err
	}
	srt, err := router.ByName(snap.Session.Router)
	if err != nil {
		return nil, rep, err
	}

	// Find the survivors first: the recovered session must share the
	// surviving pilots' clock and network (they model remote machines that
	// kept running), so session assembly adopts them from the first
	// survivor and only falls back to cfg when everything died.
	survivors := make(map[string]*pilot.Pilot)
	for _, ps := range snap.Pilots {
		p, ok := pilot.Lookup(ps.Desc.UID)
		if ok && p.State() == states.PilotActive {
			survivors[ps.Desc.UID] = p
			rep.PilotsAlive = append(rep.PilotsAlive, ps.Desc.UID)
		} else {
			rep.PilotsLost = append(rep.PilotsLost, ps.Desc.UID)
		}
	}

	var clock simtime.Clock
	var net *msgq.Network
	topo := cfg.Topology
	if topo == nil {
		topo = platform.DefaultTopology()
	}
	for _, uid := range rep.PilotsAlive {
		clock = survivors[uid].Clock()
		net = survivors[uid].Network()
		break
	}
	// The recovered incarnation derives a fresh RNG stream: the journal
	// does not record how many draws the first life consumed, and replaying
	// the root stream from zero would correlate post-recovery behaviour
	// with already-spent randomness.
	src := rng.New(snap.Session.Seed).Derive(fmt.Sprintf("incarnation.%d", rep.Incarnation))
	if clock == nil {
		clock = cfg.Clock
		if clock == nil {
			clock = simtime.NewScaled(1000, DefaultOrigin)
		}
	}
	if net == nil {
		net = msgq.NewNetwork(clock, src.Derive("net"), topo.Resolver())
	}

	s := &Session{
		uid:        snap.Session.UID,
		clock:      clock,
		src:        src,
		topo:       topo,
		net:        net,
		coll:       metrics.NewCollector(),
		prof:       profile.NewRecorder(),
		remotes:    make(map[string]proto.Endpoint),
		fastBoot:   snap.Session.FastBoot,
		schedPol:   snap.Session.SchedPolicy,
		routerName: snap.Session.Router,
	}
	pub, err := net.BindPub(UpdatesAddr)
	if err != nil {
		return nil, rep, fmt.Errorf("core: recover: updates channel still bound (previous client alive?): %w", err)
	}
	s.updates = pub
	s.pm = &PilotManager{sess: s, pilots: make(map[string]*pilot.Pilot)}
	s.tm = &TaskManager{
		sess:     s,
		rt:       rt,
		tasks:    make(map[string]*Task),
		overflow: make(map[string]*Task),
	}
	s.sm = &ServiceManager{
		sess:     s,
		rt:       srt,
		reg:      service.NewEndpointRegistry(),
		services: make(map[string]*Service),
	}

	// Cut the torn tail before reopening for append: the journal opens in
	// O_APPEND mode, and new records written after a torn fragment would be
	// swallowed as that fragment's payload on the next replay (its length
	// prefix spans them), failing every later recovery with ErrChecksum.
	if stats.TornTail {
		if terr := os.Truncate(journalPath, stats.ValidBytes); terr != nil {
			_ = s.updates.Close()
			return nil, rep, fmt.Errorf("core: recover: truncate torn journal tail: %w", terr)
		}
	}
	jw, err := journal.Open(journal.Config{
		Path: journalPath, Clock: clock, FlushEvery: cfg.FlushEvery,
	})
	if err != nil {
		_ = s.updates.Close()
		return nil, rep, err
	}
	s.jw = jw
	s.incarnation = rep.Incarnation
	if err := s.attachJournal(snap.Session.Seed); err != nil {
		_ = jw.Close()
		_ = s.updates.Close()
		return nil, rep, err
	}

	// Seed registry floors and manager sequence counters from the journal
	// before any re-placement can publish or mint a UID.
	var taskUIDs, svcUIDs []string
	for _, ts := range snap.Tasks {
		taskUIDs = append(taskUIDs, ts.Desc.UID)
	}
	for _, ss := range snap.Services {
		svcUIDs = append(svcUIDs, ss.Desc.UID)
		s.sm.reg.Restore(ss.Desc.UID, ss.Generation, ss.Withdrawn)
	}
	s.tm.seq = journal.MaxSeqSuffix(taskUIDs, s.uid+".task.")
	s.sm.seq = journal.MaxSeqSuffix(svcUIDs, s.uid+".svc.")
	for _, ps := range snap.Pilots {
		prefix := fmt.Sprintf("%s.pilot.%s.", s.uid, ps.Desc.Platform)
		var uids []string
		for _, q := range snap.Pilots {
			uids = append(uids, q.Desc.UID)
		}
		if n := journal.MaxSeqSuffix(uids, prefix); n > s.pm.seq {
			s.pm.seq = n
		}
	}

	// Adopt the survivors: rebind their session-side hooks to this
	// session's Updater, journal and registry mirror, then attach them to
	// the managers. Dead pilots are not resurrected — re-acquiring
	// resources is the operator's call, not Recover's.
	for _, uid := range rep.PilotsAlive {
		p := survivors[uid]
		puid := uid
		p.Rebind(pilot.Hooks{
			PilotState:       s.publishState("pilot"),
			TaskState:        s.publishState("task"),
			ServiceState:     s.publishState("service"),
			OnServicePublish: func(ep proto.Endpoint) { s.sm.mirrorPublish(puid, ep) },
		})
		s.pm.mu.Lock()
		s.pm.pilots[uid] = p
		s.pm.mu.Unlock()
		s.tm.AddPilot(p)
		s.sm.AddPilot(p)
	}

	s.recoverTasks(snap, survivors, rep)
	s.recoverServices(snap, survivors, rep)

	sort.Strings(rep.PilotsAlive)
	sort.Strings(rep.PilotsLost)
	sort.Strings(rep.TasksReattached)
	sort.Strings(rep.TasksRerouted)
	sort.Strings(rep.TasksSettled)
	sort.Strings(rep.ServicesReattached)
	sort.Strings(rep.ServicesReplaced)
	sort.Strings(rep.ServicesSettled)
	return s, rep, nil
}

// recoverTasks re-pins, re-routes or settles every journaled task.
func (s *Session) recoverTasks(snap *journal.Snapshot, survivors map[string]*pilot.Pilot, rep *RecoveryReport) {
	for _, ts := range snap.Tasks {
		uid := ts.Desc.UID
		t := &Task{
			tm: s.tm, uid: uid, desc: ts.Desc,
			ctx: context.Background(), done: make(chan struct{}),
		}
		s.tm.mu.Lock()
		s.tm.tasks[uid] = t
		s.tm.mu.Unlock()

		model := states.ModelFor(states.EntityTask)
		switch {
		case ts.State == states.TaskDone:
			t.finish(nil)
			rep.TasksSettled = append(rep.TasksSettled, uid)
			continue
		case model.IsFinal(ts.State):
			t.finish(fmt.Errorf("core: task %s was %s before the crash", uid, ts.State))
			rep.TasksSettled = append(rep.TasksSettled, uid)
			continue
		}

		if p, ok := survivors[ts.Pilot]; ok {
			if pt, found := p.Task(uid); found {
				// Still in the surviving pilot's hands: re-pin and watch.
				// The watcher settles it (or re-routes, should this pilot
				// die later) exactly as the first incarnation would have.
				t.mu.Lock()
				t.cur, t.p = pt, p
				t.mu.Unlock()
				go s.tm.watch(t, pt, p)
				rep.TasksReattached = append(rep.TasksReattached, uid)
				continue
			}
			// Bind journaled, dispatch lost: the crash hit between the WAL
			// append and the pilot submission. Re-run the torn step.
		}
		if ts.Desc.Pilot != "" {
			// Pinned semantics survive the crash: the pinned pilot is gone
			// (or never received the task), so the task fails the same way
			// a live pinned failover does.
			t.finish(fmt.Errorf("core: task %s pinned to pilot %s: %w",
				uid, ts.Desc.Pilot, pilot.ErrPilotStopped))
			rep.TasksSettled = append(rep.TasksSettled, uid)
			continue
		}
		s.tm.redispatch(t, false)
		rep.TasksRerouted = append(rep.TasksRerouted, uid)
	}
}

// recoverServices reattaches, re-places or settles every journaled
// service. The only journal-authoritative settle marker is the withdraw
// record: every live settle path (session Terminate, own failure on a
// healthy pilot) withdraws before finishing, so a final instance state
// WITHOUT it means the crash interrupted something — either the settle's
// last append, which reattaching resolves (the watcher re-derives the
// settle from the live instance), or a dying pilot's graceful teardown,
// which the live session would have answered with a re-placement.
func (s *Session) recoverServices(snap *journal.Snapshot, survivors map[string]*pilot.Pilot, rep *RecoveryReport) {
	for _, ss := range snap.Services {
		uid := ss.Desc.UID
		h := &Service{
			sm: s.sm, uid: uid, desc: ss.Desc,
			swapped: make(chan struct{}), done: make(chan struct{}),
		}
		s.sm.mu.Lock()
		s.sm.services[uid] = h
		s.sm.mu.Unlock()

		if ss.Withdrawn {
			// Settled for good before the crash. Re-issue the tombstone so
			// the new incarnation's journal and parked resolvers agree.
			s.sm.reg.Withdraw(uid)
			if ss.State == states.ServiceDone {
				h.finish(nil)
			} else {
				h.finish(fmt.Errorf("core: service %s was %s before the crash", uid, ss.State))
			}
			rep.ServicesSettled = append(rep.ServicesSettled, uid)
			continue
		}

		if p, ok := survivors[ss.Pilot]; ok {
			if inst, found := p.Services().Get(uid); found {
				h.mu.Lock()
				h.inst, h.p = inst, p
				h.mu.Unlock()
				if ep := inst.Endpoint(); ep.Address != "" {
					// The instance already published (possibly the very
					// append the crash ate): re-mirror under the new
					// incarnation — the restored generation floor makes
					// this strictly newer than any endpoint a pre-crash
					// client still holds. An instance caught pre-publish
					// publishes through its rebound hook instead.
					s.sm.mirrorPublish(p.UID(), ep)
				}
				go s.sm.watch(h)
				rep.ServicesReattached = append(rep.ServicesReattached, uid)
				continue
			}
			// Bind journaled, dispatch lost — fall through to re-placement.
		}
		if ss.Desc.Pilot != "" {
			s.sm.reg.Withdraw(uid)
			h.finish(fmt.Errorf("core: service %s pinned to pilot %s: %w",
				uid, ss.Desc.Pilot, pilot.ErrPilotStopped))
			rep.ServicesSettled = append(rep.ServicesSettled, uid)
			continue
		}
		// The host died while the client was down (or never got the
		// dispatch): re-place on the survivors, exactly like a live
		// failover — same stable UID, fresh bootstrap, re-publication
		// under the new incarnation.
		inst, p, err := s.sm.replace(h)
		if err != nil {
			s.sm.reg.Withdraw(uid)
			h.finish(err)
			rep.ServicesSettled = append(rep.ServicesSettled, uid)
			continue
		}
		h.mu.Lock()
		h.inst, h.p = inst, p
		h.replacements++
		h.mu.Unlock()
		go s.sm.watch(h)
		rep.ServicesReplaced = append(rep.ServicesReplaced, uid)
	}
}

package scheduler

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/rng"
)

// TestSnapshotTracksShapeAggregates pins the incrementally maintained
// per-shape free-capacity aggregates against a from-scratch recomputation
// under random allocation/release churn, including the out-of-band
// release path (Release not routed through the index's point refresh
// until a refreshAll).
func TestSnapshotTracksShapeAggregates(t *testing.T) {
	specs := []platform.NodeSpec{
		{Cores: 128, GPUs: 16, MemGB: 1024},
		{Cores: 16, GPUs: 0, MemGB: 64},
		{Cores: 64, GPUs: 8, MemGB: 256},
	}
	src := rng.New(77)
	var nodes []*platform.Node
	for i := 0; i < 23; i++ {
		nodes = append(nodes, platform.NewNode(fmt.Sprintf("n%02d", i), specs[src.Intn(len(specs))]))
	}
	ix := newNodeIndex(nodes)

	oracle := func() map[platform.NodeSpec][3]float64 {
		out := make(map[platform.NodeSpec][3]float64)
		for _, n := range nodes {
			fc, fg, fm := n.Free()
			agg := out[n.Spec()]
			out[n.Spec()] = [3]float64{agg[0] + float64(fc), agg[1] + float64(fg), agg[2] + fm}
		}
		return out
	}
	check := func(step int) {
		t.Helper()
		want := oracle()
		for _, sh := range ix.shapes {
			w := want[sh.Spec]
			if float64(sh.FreeCores) != w[0] || float64(sh.FreeGPUs) != w[1] ||
				math.Abs(sh.FreeMemGB-w[2]) > 1e-9 {
				t.Fatalf("step %d: shape %+v aggregate = %d/%d/%.1f, oracle %.0f/%.0f/%.1f",
					step, sh.Spec, sh.FreeCores, sh.FreeGPUs, sh.FreeMemGB, w[0], w[1], w[2])
			}
		}
	}

	var live []*platform.Allocation
	for step := 0; step < 1200; step++ {
		switch {
		case step%97 == 0:
			ix.refreshAll() // periodic full re-sync must not drift the aggregates
		case src.Intn(3) == 0 && len(live) > 0:
			k := src.Intn(len(live))
			a := live[k]
			live = append(live[:k], live[k+1:]...)
			a.Release()
			ix.refresh(indexOf(nodes, a.Node()))
		default:
			cores, gpus := src.Intn(12), src.Intn(3)
			mem := float64(src.Intn(64))
			if i := ix.find(cores, gpus, mem); i >= 0 {
				if a := nodes[i].TryAlloc(cores, gpus, mem); a != nil {
					live = append(live, a)
					ix.refresh(i)
				}
			}
		}
		check(step)
	}
}

// TestSchedulerSnapshot drives a small scheduler and checks the snapshot's
// wait depth, grant count, shape table and fit predicates.
func TestSchedulerSnapshot(t *testing.T) {
	fat := platform.NodeSpec{Cores: 8, GPUs: 2, MemGB: 32}
	thin := platform.NodeSpec{Cores: 2, GPUs: 0, MemGB: 8}
	var nodes []*platform.Node
	nodes = append(nodes, platform.NewNode("fat0", fat))
	for i := 0; i < 3; i++ {
		nodes = append(nodes, platform.NewNode(fmt.Sprintf("thin%d", i), thin))
	}
	router := NewRouter()
	s := New(nodes, func(p Placement) { router.Route(p) })
	defer s.Close()

	sn := s.Snapshot()
	if sn.Waiting != 0 || sn.Scheduled != 0 {
		t.Fatalf("idle snapshot = %+v", sn)
	}
	if len(sn.Shapes) != 2 {
		t.Fatalf("shapes = %d, want 2", len(sn.Shapes))
	}
	if !sn.CanEverFit(8, 2, 32) || sn.CanEverFit(9, 0, 0) || sn.CanEverFit(-1, 0, 0) {
		t.Fatal("CanEverFit wrong on idle pool")
	}
	if !sn.MayFitNow(8, 2, 32) {
		t.Fatal("idle pool must pass the free-maxima check for its largest shape")
	}
	wantFree := WeightedCapacity(8+3*2, 2, 32+3*8)
	if got := sn.FreeWeighted(); math.Abs(got-wantFree) > 1e-9 {
		t.Fatalf("FreeWeighted = %v, want %v", got, wantFree)
	}

	// Occupy the fat node, queue an un-placeable-now request behind it.
	ch := router.Expect("hog")
	if err := s.Submit(Request{UID: "hog", Cores: 8, GPUs: 2, MemGB: 32}); err != nil {
		t.Fatal(err)
	}
	pl := <-ch
	if err := s.Submit(Request{UID: "blocked", Cores: 8, GPUs: 2, MemGB: 32}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sn = s.Snapshot()
		if sn.Waiting == 1 && sn.Scheduled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never settled: %+v", sn)
		}
		time.Sleep(time.Millisecond)
	}
	if sn.MayFitNow(8, 2, 32) {
		t.Fatal("fat demand may not pass the maxima check with the fat node full")
	}
	if !sn.CanEverFit(8, 2, 32) {
		t.Fatal("CanEverFit must ignore occupancy")
	}
	for _, sh := range sn.Shapes {
		if sh.Spec == fat && (sh.FreeCores != 0 || sh.FreeGPUs != 0 || sh.FreeMemGB != 0) {
			t.Fatalf("fat shape aggregate not drained: %+v", sh)
		}
		if sh.Spec == thin && sh.FreeCores != 6 {
			t.Fatalf("thin shape aggregate = %+v, want 6 free cores", sh)
		}
	}
	s.Release(pl.Alloc)
}

// TestDeriveWeights pins the calibration rule: single-shape pools keep
// the global defaults, mixed pools derive cores-per-GPU and cores-per-GB
// from the nodes that carry those dimensions.
func TestDeriveWeights(t *testing.T) {
	homog := []platform.NodeGroup{{Count: 64, Spec: platform.NodeSpec{Cores: 64, GPUs: 8, MemGB: 512}}}
	if w := DeriveWeights(homog); w != DefaultWeights {
		t.Fatalf("homogeneous pool weights = %+v, want defaults %+v", w, DefaultWeights)
	}
	hetero := []platform.NodeGroup{
		{Count: 32, Spec: platform.NodeSpec{Cores: 128, GPUs: 16, MemGB: 1024}},
		{Count: 96, Spec: platform.NodeSpec{Cores: 16, GPUs: 0, MemGB: 64}},
	}
	w := DeriveWeights(hetero)
	if math.Abs(w.GPU-8) > 1e-9 { // 32·128 cores over 32·16 GPUs
		t.Fatalf("derived GPU weight = %v, want 8", w.GPU)
	}
	wantMem := float64(32*128+96*16) / float64(32*1024+96*64)
	if math.Abs(w.Mem-wantMem) > 1e-9 {
		t.Fatalf("derived Mem weight = %v, want %v", w.Mem, wantMem)
	}
	// A GPU-less mixed pool keeps the default GPU rate (nothing to
	// calibrate on) but still derives the memory rate.
	cpuOnly := []platform.NodeGroup{
		{Count: 4, Spec: platform.NodeSpec{Cores: 32, GPUs: 0, MemGB: 128}},
		{Count: 4, Spec: platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32}},
	}
	w = DeriveWeights(cpuOnly)
	if w.GPU != DefaultWeights.GPU {
		t.Fatalf("GPU-less pool derived GPU weight %v, want default", w.GPU)
	}
	if math.Abs(w.Mem-0.25) > 1e-9 { // 160 cores / 640 GB
		t.Fatalf("Mem weight = %v, want 0.25", w.Mem)
	}
}

// TestDeriveWeightsHomogeneousIdenticalChoices is the satellite's pin: on
// every homogeneous catalog platform the per-pool calibration is a no-op,
// so best-fit picks exactly the node the global-scale fold picked —
// verified by replaying randomized allocation/query churn against an
// exhaustive oracle that folds on DefaultWeights explicitly.
func TestDeriveWeightsHomogeneousIdenticalChoices(t *testing.T) {
	shapes := map[string]platform.NodeSpec{
		"frontier": {Cores: 64, GPUs: 8, MemGB: 512},
		"delta":    {Cores: 64, GPUs: 4, MemGB: 256},
		"r3":       {Cores: 128, GPUs: 16, MemGB: 1024},
	}
	for name, sp := range shapes {
		t.Run(name, func(t *testing.T) {
			src := rng.New(uint64(len(name)) * 131)
			var nodes []*platform.Node
			for i := 0; i < 29; i++ {
				nodes = append(nodes, platform.NewNode(fmt.Sprintf("n%02d", i), sp))
			}
			ix := newNodeIndex(nodes)
			if ix.w != DefaultWeights {
				t.Fatalf("homogeneous pool calibrated to %+v, want defaults", ix.w)
			}
			defaultOracle := func(cores, gpus int, mem float64) int {
				best, bestScore := -1, 0.0
				for i, n := range nodes {
					fc, fg, fm := n.Free()
					if fc < cores || fg < gpus || fm < mem {
						continue
					}
					score := DefaultWeights.Capacity(fc-cores, fg-gpus, fm-mem)
					if best < 0 || score < bestScore {
						best, bestScore = i, score
					}
				}
				return best
			}
			var live []*platform.Allocation
			for step := 0; step < 1500; step++ {
				if src.Intn(3) == 0 && len(live) > 0 {
					k := src.Intn(len(live))
					a := live[k]
					live = append(live[:k], live[k+1:]...)
					a.Release()
					ix.refresh(indexOf(nodes, a.Node()))
					continue
				}
				cores, gpus := src.Intn(sp.Cores+2), src.Intn(sp.GPUs+2)
				mem := float64(src.Intn(int(sp.MemGB) + 2))
				got := ix.findBest(cores, gpus, mem)
				want := defaultOracle(cores, gpus, mem)
				if got != want {
					t.Fatalf("step %d: findBest(%d,%d,%.0f) = %d, default-weight choice = %d",
						step, cores, gpus, mem, got, want)
				}
				if got >= 0 {
					if a := nodes[got].TryAlloc(cores, gpus, mem); a != nil {
						live = append(live, a)
						ix.refresh(got)
					}
				}
			}
		})
	}
}

// TestSnapshotGenerationCache pins the satellite contract: Snapshot is
// cached against the scheduler's mutation generation — identical while
// nothing changed, rebuilt (not stale) across every mutation class
// (submit, grant, release, close).
func TestSnapshotGenerationCache(t *testing.T) {
	plat := platform.New("snapgen", 4, platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32})
	placed := make(chan Placement, 8)
	s := New(plat.Nodes(), func(p Placement) { placed <- p })
	defer s.Close()

	// Quiescent: repeated snapshots serve the cache (same generation, same
	// backing Shapes array).
	g0 := s.Generation()
	sn1 := s.Snapshot()
	sn2 := s.Snapshot()
	if s.Generation() != g0 {
		t.Fatalf("Snapshot moved the generation: %d → %d", g0, s.Generation())
	}
	if &sn1.Shapes[0] != &sn2.Shapes[0] {
		t.Fatal("quiescent snapshots rebuilt instead of hitting the cache")
	}

	// A grant mutates free capacity: the generation moves and the next
	// snapshot sees the allocation.
	if err := s.Submit(Request{UID: "a", Cores: 8}); err != nil {
		t.Fatal(err)
	}
	pl := <-placed
	waitGen := func(old uint64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.Generation() == old {
			if time.Now().After(deadline) {
				t.Fatal("generation never advanced")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitGen(g0)
	sn3 := s.Snapshot()
	if free := sn3.Shapes[0].FreeCores; free != 3*8 {
		t.Fatalf("post-grant snapshot free cores = %d, want 24", free)
	}

	// Release restores capacity and invalidates again.
	g1 := s.Generation()
	s.Release(pl.Alloc)
	waitGen(g1)
	sn4 := s.Snapshot()
	if free := sn4.Shapes[0].FreeCores; free != 4*8 {
		t.Fatalf("post-release snapshot free cores = %d, want 32", free)
	}

	// And the cache stays correct when nothing but snapshots happen.
	for i := 0; i < 100; i++ {
		if got := s.Snapshot().Shapes[0].FreeCores; got != 32 {
			t.Fatalf("cached snapshot drifted: %d", got)
		}
	}
}

// TestSnapshotCacheAllocFree: cache hits must not allocate — that is the
// point of skipping the lock and the shape-table copy.
func TestSnapshotCacheAllocFree(t *testing.T) {
	plat := platform.New("snapalloc", 8, platform.NodeSpec{Cores: 8, GPUs: 0, MemGB: 32})
	s := New(plat.Nodes(), func(p Placement) {})
	defer s.Close()
	s.Snapshot() // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		if s.Snapshot().Shapes[0].Nodes != 8 {
			t.Fatal("bad snapshot")
		}
	})
	if allocs > 0 {
		t.Fatalf("cached Snapshot allocates %.1f objects/op, want 0", allocs)
	}
}

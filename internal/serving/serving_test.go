package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/simtime"
)

var origin = time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)

func newServer(t *testing.T, model string, concurrency int) *Server {
	return newServerScaled(t, model, concurrency, 100000)
}

// newServerScaled lets slow-clock tests (scale 1000) observe queueing while
// fast tests compress model loads to microseconds (scale 100000).
func newServerScaled(t *testing.T, model string, concurrency int, scale float64) *Server {
	t.Helper()
	spec, err := llm.Lookup(model)
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(scale, origin)
	src := rng.New(42)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		Concurrency: concurrency,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func start(t *testing.T, s *Server) {
	t.Helper()
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
}

func req(uid, prompt string, max int) proto.InferenceRequest {
	return proto.InferenceRequest{RequestUID: uid, ClientUID: "task.0001", Prompt: prompt, MaxTokens: max}
}

func TestNewValidation(t *testing.T) {
	clock := simtime.NewScaled(1000, origin)
	src := rng.New(1)
	spec, _ := llm.Lookup("noop")
	backend := LLMBackend{M: llm.NewInstance(spec, clock, src)}
	if _, err := New(Config{Clock: clock, Src: src}); err == nil {
		t.Fatal("New accepted nil backend")
	}
	if _, err := New(Config{Backend: backend, Src: src}); err == nil {
		t.Fatal("New accepted nil clock")
	}
	if _, err := New(Config{Backend: backend, Clock: clock}); err == nil {
		t.Fatal("New accepted nil src")
	}
}

func TestStartLoadsBackend(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	if s.Ready() {
		t.Fatal("server ready before Start")
	}
	load, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	if load < 10*time.Second {
		t.Fatalf("load time %v implausibly small for llama-8b", load)
	}
	if !s.Ready() || s.LoadTime() != load {
		t.Fatal("server not ready after Start")
	}
	if _, err := s.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestSubmitBeforeStart(t *testing.T) {
	s := newServer(t, "noop", 1)
	_, err := s.Submit(context.Background(), req("r1", "x", 1))
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
	if s.Rejected() != 1 {
		t.Fatalf("Rejected = %d", s.Rejected())
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "classify this sample", 32))
	if err != nil {
		t.Fatal(err)
	}
	if reply.RequestUID != "r1" || reply.ServiceUID != "service.0001" || reply.Model != "llama-8b" {
		t.Fatalf("reply header = %+v", reply)
	}
	if reply.OutputTokens < 1 {
		t.Fatal("no output tokens")
	}
	if s.Processed() != 1 {
		t.Fatalf("Processed = %d", s.Processed())
	}
}

func TestTimingMonotoneAndDecomposable(t *testing.T) {
	// scale 1000 keeps real scheduling noise (≲1ms → ≲1s sim) well below
	// the multi-second inference it is compared against
	s := newServerScaled(t, "llama-8b", 1, 1000)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "prompt", 1024))
	if err != nil {
		t.Fatal(err)
	}
	tm := reply.Timing
	if tm.ReceivedAt.After(tm.DequeuedAt) || tm.DequeuedAt.After(tm.InferStartAt) ||
		tm.InferStartAt.After(tm.InferEndAt) || tm.InferEndAt.After(tm.RepliedAt) {
		t.Fatalf("timing not monotone: %+v", tm)
	}
	if tm.InferTime() <= 0 {
		t.Fatal("zero inference time for llama")
	}
	if tm.ServiceTime() <= 0 {
		t.Fatal("zero service overhead")
	}
	// paper Fig. 6: inference dominates service overhead by orders of
	// magnitude for a real model
	if tm.InferTime() < 10*tm.ServiceTime() {
		t.Fatalf("inference (%v) does not dominate service (%v)", tm.InferTime(), tm.ServiceTime())
	}
}

func TestNoopInferenceNearZero(t *testing.T) {
	// low clock scale: at high scales, sub-microsecond real gaps between
	// Now() calls inflate into large simulated durations
	s := newServerScaled(t, "noop", 1, 100)
	start(t, s)
	reply, err := s.Submit(context.Background(), req("r1", "ignored", 0))
	if err != nil {
		t.Fatal(err)
	}
	if it := reply.Timing.InferTime(); it > 50*time.Millisecond {
		t.Fatalf("noop inference time = %v (sim), want ≈0", it)
	}
}

func TestSingleThreadedQueueing(t *testing.T) {
	// The paper's single-threaded service: N concurrent clients → requests
	// serialize, and later requests show queue time ≫ first request's.
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	const n = 4
	var wg sync.WaitGroup
	queueTimes := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := s.Submit(context.Background(), req("r", "prompt", 64))
			if err != nil {
				t.Error(err)
				return
			}
			queueTimes[i] = reply.Timing.QueueTime()
		}(i)
	}
	wg.Wait()
	var maxQ time.Duration
	for _, q := range queueTimes {
		if q > maxQ {
			maxQ = q
		}
	}
	// with ~seconds-long inferences, the last of 4 serialized requests must
	// have queued for at least one inference duration
	if maxQ < 500*time.Millisecond {
		t.Fatalf("max queue time %v too small for single-threaded service", maxQ)
	}
}

func TestConcurrentWorkersReduceQueueing(t *testing.T) {
	serial := newServer(t, "llama-8b", 1)
	parallel := newServer(t, "llama-8b", 4)
	start(t, serial)
	start(t, parallel)
	run := func(s *Server) time.Duration {
		const n = 4
		var wg sync.WaitGroup
		var mu sync.Mutex
		var total time.Duration
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				reply, err := s.Submit(context.Background(), req("r", "p", 64))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				total += reply.Timing.QueueTime()
				mu.Unlock()
			}()
		}
		wg.Wait()
		return total
	}
	qSerial, qParallel := run(serial), run(parallel)
	if qParallel >= qSerial {
		t.Fatalf("4 workers queued %v, single worker %v — want reduction", qParallel, qSerial)
	}
}

func TestQueueFull(t *testing.T) {
	spec, _ := llm.Lookup("llama-8b")
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(1)
	s, err := New(Config{
		UID:      "svc",
		Backend:  LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("m"))},
		Clock:    clock,
		Src:      src.Derive("s"),
		QueueCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	// saturate: 1 executing + 1 queued, then the next must be rejected
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), req("r", "p", 512))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	full := 0
	for err := range errs {
		if errors.Is(err, ErrQueueFull) {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no request was rejected with ErrQueueFull")
	}
}

func TestHandlerRoundTrip(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindRequest, 9, "task.0001", "service.0001", origin, req("r9", "x", 0))
	out := h(env)
	if out.Kind != proto.KindReply || out.ID != 9 {
		t.Fatalf("handler reply = %+v", out)
	}
	var rep proto.InferenceReply
	if err := out.Decode(proto.KindReply, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.RequestUID != "r9" {
		t.Fatalf("reply body = %+v", rep)
	}
}

func TestHandlerBadRequest(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindControl, 1, "x", "y", origin, proto.Control{})
	out := h(env)
	if out.Kind != proto.KindError {
		t.Fatalf("handler accepted wrong-kind request: %+v", out)
	}
}

func TestHandlerErrorWhenNotReady(t *testing.T) {
	s := newServer(t, "noop", 1)
	h := s.Handler()
	env, _ := proto.NewEnvelope(proto.KindRequest, 1, "x", "y", origin, req("r", "p", 0))
	out := h(env)
	if out.Kind != proto.KindError {
		t.Fatal("handler replied to request before Start")
	}
	var eb proto.ErrorBody
	if err := out.Decode(proto.KindError, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Msg == "" {
		t.Fatal("empty error message")
	}
}

func TestDrainFinishesQueue(t *testing.T) {
	s := newServer(t, "llama-8b", 1)
	start(t, s)
	const n = 3
	var wg sync.WaitGroup
	ok := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), req("r", "p", 32)); err == nil {
				ok <- struct{}{}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let requests enqueue
	s.Drain()
	wg.Wait()
	if len(ok) != n {
		t.Fatalf("%d/%d queued requests served across drain", len(ok), n)
	}
	if _, err := s.Submit(context.Background(), req("r", "p", 32)); err == nil {
		t.Fatal("Submit accepted after Drain")
	}
	s.Drain() // idempotent
}

func TestStopFlushesQueueWithErrors(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 40ms real
	start(t, s)
	var wg sync.WaitGroup
	results := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reply, err := s.Submit(context.Background(), req("r", "p", 2048))
			if err == nil && reply.Err != "" {
				err = errors.New(reply.Err)
			}
			results <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	wg.Wait()
	close(results)
	var failed int
	for err := range results {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("Stop did not flush any queued request with an error")
	}
	if _, err := s.Submit(context.Background(), req("r", "p", 1)); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 15ms real
	start(t, s)
	// occupy the single worker with a ~45ms (real) inference
	go s.Submit(context.Background(), req("long", "p", 2048)) //nolint:errcheck
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Submit(ctx, req("r", "p", 2048))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestQueueDepthTracksLoad(t *testing.T) {
	s := newServerScaled(t, "llama-8b", 1, 1000) // inference ≈ 4ms real per 64 tokens
	start(t, s)
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("idle depth = %d", d)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(), req("r", "p", 2048)) //nolint:errcheck
		}()
	}
	time.Sleep(20 * time.Millisecond)
	if d := s.QueueDepth(); d < 1 || d > 3 {
		t.Fatalf("depth under load = %d, want 1..3", d)
	}
	wg.Wait()
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("depth after drain = %d", d)
	}
}

func TestStartAfterStop(t *testing.T) {
	s := newServer(t, "noop", 1)
	s.Stop()
	if _, err := s.Start(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Start after Stop = %v, want ErrStopped", err)
	}
}

func TestDedupWindowServesRedeliveryExactlyOnce(t *testing.T) {
	s := newServer(t, "noop", 1)
	start(t, s)
	defer s.Stop()

	first, err := s.Submit(context.Background(), req("dup-1", "p", 8))
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Redelivery of the same request UID (a resolver retry after a lost
	// reply) must answer from memory, not re-execute.
	second, err := s.Submit(context.Background(), req("dup-1", "p", 8))
	if err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	if s.Processed() != 1 {
		t.Fatalf("Processed = %d, want exactly 1 execution", s.Processed())
	}
	if s.Deduped() != 1 {
		t.Fatalf("Deduped = %d, want 1", s.Deduped())
	}
	if second.RequestUID != first.RequestUID || second.Text != first.Text ||
		second.Timing != first.Timing {
		t.Fatalf("cached reply differs: %+v vs %+v", second, first)
	}
	// A fresh UID still executes.
	if _, err := s.Submit(context.Background(), req("dup-2", "p", 8)); err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if s.Processed() != 2 || s.Deduped() != 1 {
		t.Fatalf("after fresh UID: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
}

func TestDedupWindowEviction(t *testing.T) {
	spec, err := llm.Lookup("noop")
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(7)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		DedupWindow: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	defer s.Stop()

	for _, uid := range []string{"a", "b", "c"} { // "a" evicted at "c"
		if _, err := s.Submit(context.Background(), req(uid, "p", 8)); err != nil {
			t.Fatalf("submit %s: %v", uid, err)
		}
	}
	if _, err := s.Submit(context.Background(), req("a", "p", 8)); err != nil {
		t.Fatalf("resubmit evicted: %v", err)
	}
	if s.Processed() != 4 || s.Deduped() != 0 {
		t.Fatalf("evicted UID deduped: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
	if _, err := s.Submit(context.Background(), req("c", "p", 8)); err != nil {
		t.Fatalf("resubmit remembered: %v", err)
	}
	if s.Deduped() != 1 {
		t.Fatalf("remembered UID not deduped: %d", s.Deduped())
	}
}

func TestDedupDisabled(t *testing.T) {
	spec, err := llm.Lookup("noop")
	if err != nil {
		t.Fatal(err)
	}
	clock := simtime.NewScaled(100000, origin)
	src := rng.New(7)
	s, err := New(Config{
		UID:         "service.0001",
		Backend:     LLMBackend{M: llm.NewInstance(spec, clock, src.Derive("model"))},
		Clock:       clock,
		Src:         src.Derive("server"),
		DedupWindow: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start(t, s)
	defer s.Stop()
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), req("same", "p", 8)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Processed() != 2 || s.Deduped() != 0 {
		t.Fatalf("disabled dedup intercepted: processed=%d deduped=%d", s.Processed(), s.Deduped())
	}
}

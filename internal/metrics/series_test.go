package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// goldenSeries builds a small deterministic series exercising every column:
// multiple intervals, an empty middle interval, failures, and queue peaks.
func goldenSeries() *IntervalSeries {
	origin := time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)
	is := NewIntervalSeries(origin, 10*time.Second, DefaultSketchAlpha)
	at := func(d time.Duration) time.Time { return origin.Add(d) }

	// interval 0: three offered, two completed, one failed
	is.Offered(at(1 * time.Second))
	is.Offered(at(2 * time.Second))
	is.Offered(at(3 * time.Second))
	is.Completed(at(2*time.Second), 5*time.Millisecond)
	is.Completed(at(4*time.Second), 7*time.Millisecond)
	is.Failed(at(9 * time.Second))
	is.ObserveQueue(at(3*time.Second), 4)
	is.ObserveQueue(at(5*time.Second), 2)

	// interval 1: empty (pinned as an all-zero row)

	// interval 2: one offered/completed with a 2s latency
	is.Offered(at(25 * time.Second))
	is.Completed(at(27*time.Second), 2*time.Second)
	is.ObserveQueue(at(26*time.Second), 1)
	return is
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestIntervalSeriesGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSeries().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "interval_series.csv", buf.Bytes())
}

func TestIntervalSeriesGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSeries().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "interval_series.json", buf.Bytes())
}

func TestIntervalSeriesCounts(t *testing.T) {
	is := goldenSeries()
	offered, completed, failed := is.Totals()
	if offered != 4 || completed != 3 || failed != 1 {
		t.Fatalf("Totals = %d/%d/%d, want 4/3/1", offered, completed, failed)
	}
	rows := is.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Offered != 3 || rows[0].Completed != 2 || rows[0].Failed != 1 || rows[0].QueuePeak != 4 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[1].Offered != 0 || rows[1].Completed != 0 || rows[1].QueuePeak != 0 {
		t.Fatalf("row 1 must be empty: %+v", rows[1])
	}
	if rows[2].Start != 20*time.Second {
		t.Fatalf("row 2 start = %v", rows[2].Start)
	}
	// rates: 3 offered over a 10s interval
	if rows[0].OfferedRate != 0.3 || rows[0].CompletedRate != 0.2 {
		t.Fatalf("row 0 rates = %v/%v", rows[0].OfferedRate, rows[0].CompletedRate)
	}
}

func TestIntervalSeriesMerge(t *testing.T) {
	origin := time.Date(2025, 3, 17, 0, 0, 0, 0, time.UTC)
	mk := func() *IntervalSeries { return NewIntervalSeries(origin, time.Second, 0) }
	a, b := mk(), mk()
	a.Offered(origin)
	a.Completed(origin, 10*time.Millisecond)
	b.Offered(origin.Add(1500 * time.Millisecond))
	b.Completed(origin.Add(1500*time.Millisecond), 30*time.Millisecond)
	b.ObserveQueue(origin, 9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	offered, completed, failed := a.Totals()
	if offered != 2 || completed != 2 || failed != 0 {
		t.Fatalf("merged Totals = %d/%d/%d", offered, completed, failed)
	}
	rows := a.Rows()
	if len(rows) != 2 || rows[0].QueuePeak != 9 || rows[1].Offered != 1 {
		t.Fatalf("merged rows = %+v", rows)
	}
	// width mismatch must refuse
	c := NewIntervalSeries(origin, 2*time.Second, 0)
	if err := a.Merge(c); err == nil {
		t.Fatal("width-mismatched Merge must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSeriesCampaignSketch(t *testing.T) {
	is := goldenSeries()
	sk := is.Sketch()
	if sk.Count() != 3 {
		t.Fatalf("campaign sketch Count = %d, want 3 completions", sk.Count())
	}
	if sk.Min() != 5*time.Millisecond || sk.Max() != 2*time.Second {
		t.Fatalf("campaign sketch min/max = %v/%v", sk.Min(), sk.Max())
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestDeriveIsDeterministicAndKeyed(t *testing.T) {
	root := New(7)
	a := root.Derive("service.0000")
	b := root.Derive("service.0000")
	c := root.Derive("service.0001")
	if a.Uint64() != b.Uint64() {
		t.Fatal("same derive key produced different streams")
	}
	a2, c2 := a.Uint64(), c.Uint64()
	if a2 == c2 {
		t.Fatal("distinct derive keys produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(6)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("normal std = %v, want ~2", std)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(8)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(3)
		if v < 0 {
			t.Fatalf("Exponential < 0: %v", v)
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-3) > 0.15 {
		t.Fatalf("exponential mean = %v, want ~3", m)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal <= 0: %v", v)
		}
	}
}

func TestDistMeans(t *testing.T) {
	cases := []struct {
		d    Dist
		want float64
	}{
		{Const{V: 5}, 5},
		{Uniform{Lo: 2, Hi: 4}, 3},
		{NewNormal(7, 1), 7},
		{Exponential{MeanV: 2.5}, 2.5},
		{LogNormal{Mu: 0, Sigma: 0}, 1},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%T.Mean() = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestTruncNormalRespectsBound(t *testing.T) {
	s := New(11)
	d := TruncNormal(0.5, 2, 0) // heavy truncation
	for i := 0; i < 5000; i++ {
		if v := d.Sample(s); v < 0 {
			t.Fatalf("truncated sample %v < 0", v)
		}
	}
}

func TestConstSampleIgnoresSource(t *testing.T) {
	d := Const{V: 1.5}
	if v := d.Sample(nil); v != 1.5 {
		t.Fatalf("Const.Sample = %v", v)
	}
}

func TestDurationDist(t *testing.T) {
	s := New(12)
	dd := ConstDuration(1500 * time.Millisecond)
	if got := dd.Sample(s); got != 1500*time.Millisecond {
		t.Fatalf("ConstDuration sample = %v", got)
	}
	if got := dd.Mean(); got != 1500*time.Millisecond {
		t.Fatalf("ConstDuration mean = %v", got)
	}
	if dd.IsZero() {
		t.Fatal("set DurationDist reported IsZero")
	}
	var zero DurationDist
	if !zero.IsZero() || zero.Sample(s) != 0 || zero.Mean() != 0 {
		t.Fatal("zero DurationDist misbehaved")
	}
}

func TestNormalDurationNonNegative(t *testing.T) {
	s := New(13)
	dd := NormalDuration(time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 2000; i++ {
		if got := dd.Sample(s); got < 0 {
			t.Fatalf("NormalDuration sample %v < 0", got)
		}
	}
}

func TestDurationDistNegativeMeanClamped(t *testing.T) {
	dd := Seconds(Const{V: -3})
	if got := dd.Mean(); got != 0 {
		t.Fatalf("negative-mean dist Mean() = %v, want 0", got)
	}
	if got := dd.Sample(New(1)); got != 0 {
		t.Fatalf("negative dist Sample() = %v, want 0", got)
	}
}

func TestUniformProperty(t *testing.T) {
	// Property: Uniform(lo,hi) samples always land in [lo, hi) for lo < hi.
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		u := Uniform{Lo: lo, Hi: hi}
		s := New(uint64(a)<<16 | uint64(b))
		for i := 0; i < 50; i++ {
			v := u.Sample(s)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New(99)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				s.Uint64()
				s.Normal(0, 1)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
